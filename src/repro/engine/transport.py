"""Pluggable shard transport: how the router reaches its workers.

:class:`~repro.engine.sharded.ShardedStreamEngine` talks to every
worker over two duplex channels — a **data** channel (batches, collect,
seed, checkpoint, ops snapshots) and a **control** channel (heartbeat
pings, fault injection). Until this module existed the two channels
were hard-wired to ``multiprocessing.Pipe``, which caps the engine at
one box. The transport abstraction keeps the router/worker protocol
byte-for-byte identical and swaps only the plumbing underneath:

* :class:`PipeTransport` — today's behavior and the default: fork one
  worker process per shard, connected by two OS pipes. Zero copies of
  anything over a network, lowest latency, single-host only.
* :class:`SocketTransport` — length-prefixed framed TCP. Each worker is
  a ``python -m repro.shard_worker --listen HOST:PORT`` process that
  may live on another host; with no addresses given the transport
  spawns localhost listeners itself (same process tree as the pipe
  transport, useful for parity testing and ``--transport tcp``).
  Connects and revive-reconnects use **bounded retry with exponential
  backoff and seeded jitter** (the same discipline as the PR 5 sink
  retry), and every retry is counted per shard in
  ``transport_reconnect_retries_total``.

Data-channel batch messages come in two shapes, transparent to the
transport: the per-event form ``{"r": records, ...}`` (pickled event
tuples) and the columnar form ``{"c": wire, "n": count, "q": seq}``
where ``wire`` is an :meth:`EventBatch.to_wire` flat buffer (u32
header length + JSON header + raw array segments) and ``"q"``/``"n"``
carry the same per-worker sequence numbering the recovery count-skip
dedup uses for pickled records.

Channel contract (both transports satisfy it):

``send(obj)`` / ``recv()``
    One picklable message per call; ``recv`` raises ``EOFError`` when
    the peer is gone, ``OSError`` on a broken channel.
``poll(timeout)``
    True when a ``recv`` would not block (including at EOF, so the
    caller observes the ``EOFError`` instead of hanging).
``fileno()``
    A selectable file descriptor — the router's writability guard
    (``select`` before ``send``) and the worker's two-channel
    multiplexer both rely on it.
``close()``
    Idempotent teardown.

Because a framed TCP channel keeps a user-space read buffer, a
complete frame may be buffered while the descriptor itself is not
readable — :func:`wait_readable` is the buffer-aware replacement for
``multiprocessing.connection.wait`` used by the worker loop.

Security: frames are pickles. The socket transport is built for
trusted networks (the same trust model as ``multiprocessing``'s own
``Listener``/``Client``); the hello handshake carries a shared token
(``REPRO_TRANSPORT_TOKEN``) that listening workers verify, which keeps
out accidental cross-talk but is not a substitute for network-level
isolation.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import random
import select
import socket
import struct
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.errors import TransportError
from repro.obs.logging import get_logger
from repro.obs.registry import MetricsRegistry, resolve_registry

_log = get_logger("transport")

TRANSPORTS = ("pipe", "tcp")

#: Frame header: one big-endian u32 payload length.
_HEADER = struct.Struct(">I")
#: Refuse absurd frames instead of allocating gigabytes on a bad peer.
MAX_FRAME_BYTES = 256 * 1024 * 1024
_RECV_CHUNK = 65536


def transport_token() -> str:
    """The shared hello token (empty string disables the check)."""
    return os.environ.get("REPRO_TRANSPORT_TOKEN", "")


def parse_hostport(text: str) -> tuple[str, int]:
    """``HOST:PORT`` → ``(host, port)``; host defaults to localhost."""
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise TransportError(
            f"expected HOST:PORT, got {text!r} (e.g. 127.0.0.1:9200)"
        )
    return (host or "127.0.0.1", int(port))


class FramedChannel:
    """One duplex message channel over a connected TCP socket.

    Messages are ``<u32 length><pickle>`` frames. The channel keeps its
    own read buffer, so :meth:`poll` reports a buffered complete frame
    as ready even when the descriptor is quiet — callers multiplexing
    channels must use :func:`wait_readable`, not a raw ``select``.
    """

    __slots__ = ("_sock", "_rbuf", "_eof")

    def __init__(self, sock: socket.socket):
        sock.setblocking(True)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - not every family has it
            pass
        self._sock = sock
        self._rbuf = bytearray()
        self._eof = False

    # ----- framing ---------------------------------------------------------

    def _buffered_frame_len(self) -> int | None:
        """Length of a complete buffered frame, else None."""
        if len(self._rbuf) < _HEADER.size:
            return None
        (length,) = _HEADER.unpack_from(self._rbuf)
        if length > MAX_FRAME_BYTES:
            raise TransportError(
                f"frame of {length} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte limit"
            )
        if len(self._rbuf) < _HEADER.size + length:
            return None
        return length

    @property
    def buffered(self) -> bool:
        """True when a complete frame is already in the read buffer."""
        return self._buffered_frame_len() is not None

    # ----- channel contract ------------------------------------------------

    def send(self, obj: Any) -> None:
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        self._sock.sendall(_HEADER.pack(len(data)) + data)

    def recv(self) -> Any:
        while True:
            length = self._buffered_frame_len()
            if length is not None:
                break
            if self._eof:
                raise EOFError("peer closed the framed channel")
            chunk = self._sock.recv(_RECV_CHUNK)
            if not chunk:
                self._eof = True
                raise EOFError("peer closed the framed channel")
            self._rbuf += chunk
        start = _HEADER.size
        payload = bytes(self._rbuf[start:start + length])
        del self._rbuf[:start + length]
        return pickle.loads(payload)

    def poll(self, timeout: float | None = 0.0) -> bool:
        deadline = (
            None if timeout is None else time.monotonic() + max(0.0, timeout)
        )
        while True:
            if self.buffered or self._eof:
                return True
            remaining: float | None = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining < 0:
                    return False
            try:
                ready = select.select([self._sock], [], [], remaining)[0]
            except (OSError, ValueError):
                self._eof = True  # closed under us: recv will raise
                return True
            if not ready:
                return False
            try:
                chunk = self._sock.recv(_RECV_CHUNK)
            except OSError:
                self._eof = True
                return True
            if not chunk:
                self._eof = True
                return True
            self._rbuf += chunk

    def fileno(self) -> int:
        return self._sock.fileno()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - double close is fine
            pass


def wait_readable(
    channels: Sequence[Any], timeout: float | None = None
) -> list[Any]:
    """Buffer-aware multi-channel wait.

    Returns the channels with a message ready: either a complete frame
    sitting in a :class:`FramedChannel` buffer, or a readable
    descriptor (pipe connections have no user-space buffer, so the
    descriptor is the whole truth for them). Blocks up to ``timeout``
    (None = forever); an empty list means the timeout elapsed.
    """
    ready = [
        chan for chan in channels if getattr(chan, "buffered", False)
    ]
    if ready:
        return ready
    try:
        from multiprocessing.connection import wait as _mp_wait

        return list(_mp_wait(channels, timeout))
    except OSError:
        return []


# ----- endpoints ------------------------------------------------------------


@dataclass
class WorkerEndpoint:
    """What a transport hands the router for one live worker."""

    conn: Any
    control: Any
    #: The locally spawned process, or None for a remote worker.
    process: Any = None
    #: Remote address, when there is one (diagnostics only).
    address: tuple[str, int] | None = None


@dataclass
class WorkerConfig:
    """Everything a worker needs to build its engine, transport-agnostic.

    Queries travel as **text** (``str(query)`` round-trips through the
    parser — the same property engine checkpoints already rely on), so
    the exact same configure document works over a pipe to a forked
    child and over TCP to a worker on another host.
    """

    specs: list[tuple[str, str]] = field(default_factory=list)
    vectorized: bool = False
    obs: dict[str, Any] = field(default_factory=dict)
    #: Self-terminate after this many seconds without any router
    #: traffic (heartbeats included); None disables the guard.
    orphan_timeout_s: float | None = None


class ShardTransport:
    """Factory for worker endpoints; one per sharded engine."""

    def bind(self, config: WorkerConfig) -> None:
        """Fix the worker configuration before the first ``open``."""
        self._config = config

    @property
    def config(self) -> WorkerConfig:
        config = getattr(self, "_config", None)
        if config is None:
            raise TransportError("transport used before bind()")
        return config

    def open(self, index: int) -> WorkerEndpoint:
        raise NotImplementedError

    def close(self) -> None:
        """Release transport-wide resources (endpoints are closed by
        the engine's per-worker teardown)."""

    def describe(self) -> str:
        return type(self).__name__


class PipeTransport(ShardTransport):
    """Fork-per-shard over two OS pipes — the classic local transport."""

    def __init__(self, ctx: Any = None, start_method: str | None = None):
        if ctx is None:
            if start_method is None:
                methods = mp.get_all_start_methods()
                start_method = (
                    "fork" if "fork" in methods else methods[0]
                )
            ctx = mp.get_context(start_method)
        self._ctx = ctx

    def open(self, index: int) -> WorkerEndpoint:
        from repro.engine.sharded import _shard_worker

        config = self.config
        data_parent, data_child = self._ctx.Pipe(duplex=True)
        ctl_parent, ctl_child = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_shard_worker,
            args=(
                data_child,
                ctl_child,
                config.specs,
                config.vectorized,
                index,
                config.obs,
                config.orphan_timeout_s,
            ),
            daemon=True,
        )
        process.start()
        data_child.close()
        ctl_child.close()
        return WorkerEndpoint(
            conn=data_parent, control=ctl_parent, process=process
        )

    def describe(self) -> str:
        return "pipe"


def connect_with_backoff(
    address: tuple[str, int],
    attempts: int = 8,
    backoff_s: float = 0.05,
    max_delay_s: float = 2.0,
    connect_timeout_s: float = 5.0,
    on_retry: Callable[[], None] | None = None,
    rng: random.Random | None = None,
) -> socket.socket:
    """TCP connect with bounded retry, exponential backoff and jitter.

    The jitter factor is drawn from a ``random.Random`` seeded from
    ``REPRO_FAULT_SEED`` (like the sink-retry helper), so chaos runs
    replay their reconnect timing deterministically. Raises
    :class:`~repro.errors.TransportError` once the budget is spent.
    """
    if attempts < 1:
        raise ValueError("attempts must be at least 1")
    if rng is None:
        try:
            seed = int(os.environ.get("REPRO_FAULT_SEED", "0") or 0)
        except ValueError:
            seed = 0
        rng = random.Random(seed ^ hash(address) & 0xFFFFFFFF)
    last: Exception | None = None
    for attempt in range(attempts):
        try:
            return socket.create_connection(
                address, timeout=connect_timeout_s
            )
        except OSError as error:
            last = error
        if on_retry is not None:
            on_retry()
        if attempt + 1 < attempts:
            delay = min(max_delay_s, backoff_s * (2 ** attempt))
            # Jitter in [0.5, 1.5): de-synchronizes a fleet of routers
            # reconnecting to the same revived worker.
            time.sleep(delay * (0.5 + rng.random()))
    raise TransportError(
        f"could not connect to worker at {address[0]}:{address[1]} "
        f"after {attempts} attempts ({last!r})"
    )


class SocketTransport(ShardTransport):
    """Length-prefixed framed TCP to workers that may live anywhere.

    Two modes:

    * ``addresses`` given — one ``HOST:PORT`` per shard, each a running
      ``python -m repro.shard_worker --listen`` process. The transport
      connects (with backoff) and ships the configure document; a
      revive re-connects to the same listener, whose serve loop accepts
      a fresh session and rebuilds its engine from the router's seed.
      ``open`` returns no process handle — the worker's lifetime is
      not ours to manage.
    * no addresses — the transport **spawns** one localhost listener
      process per shard (the listening socket is bound and put in
      listen state in the router first, so the connect can never race
      the child's accept). Same wire protocol, same process-tree
      semantics as the pipe transport — this is what ``--transport
      tcp`` without worker addresses does, and what the parity suite
      pins against the pipe transport.
    """

    def __init__(
        self,
        addresses: Sequence[str | tuple[str, int]] | None = None,
        host: str = "127.0.0.1",
        connect_attempts: int = 8,
        connect_backoff_s: float = 0.05,
        handshake_timeout_s: float = 10.0,
        registry: MetricsRegistry | None = None,
        ctx: Any = None,
    ):
        self._addresses: list[tuple[str, int]] | None = None
        if addresses is not None:
            self._addresses = [
                parse_hostport(a) if isinstance(a, str) else (a[0], int(a[1]))
                for a in addresses
            ]
        self._host = host
        self._connect_attempts = connect_attempts
        self._connect_backoff_s = connect_backoff_s
        self._handshake_timeout_s = handshake_timeout_s
        registry = resolve_registry(registry)
        self._registry = registry
        if ctx is None:
            methods = mp.get_all_start_methods()
            ctx = mp.get_context(
                "fork" if "fork" in methods else methods[0]
            )
        self._ctx = ctx
        self._m_connects: dict[int, Any] = {}
        self._m_retries: dict[int, Any] = {}

    def _counters(self, index: int) -> tuple[Any, Any]:
        if index not in self._m_connects:
            self._m_connects[index] = self._registry.counter(
                "transport_connects_total",
                "worker channel connections established by the transport",
                shard=str(index),
            )
            self._m_retries[index] = self._registry.counter(
                "transport_reconnect_retries_total",
                "worker connect attempts that failed and were retried",
                shard=str(index),
            )
        return self._m_connects[index], self._m_retries[index]

    def open(self, index: int) -> WorkerEndpoint:
        if self._addresses is not None:
            if index >= len(self._addresses):
                raise TransportError(
                    f"shard {index} has no worker address (got "
                    f"{len(self._addresses)} for more shards)"
                )
            return self._connect(index, self._addresses[index], None)
        return self._spawn(index)

    def _spawn(self, index: int) -> WorkerEndpoint:
        from repro.shard_worker import serve_socket

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
            )
            listener.bind((self._host, 0))
            listener.listen(4)
            address = listener.getsockname()
            process = self._ctx.Process(
                target=serve_socket,
                args=(listener,),
                kwargs={
                    "orphan_timeout_s": self.config.orphan_timeout_s,
                },
                daemon=True,
            )
            process.start()
        finally:
            listener.close()
        return self._connect(index, address, process)

    def _connect(
        self,
        index: int,
        address: tuple[str, int],
        process: Any,
    ) -> WorkerEndpoint:
        m_connects, m_retries = self._counters(index)
        config = self.config
        token = transport_token()
        channels: list[FramedChannel] = []
        try:
            for role in ("data", "control"):
                sock = connect_with_backoff(
                    address,
                    attempts=self._connect_attempts,
                    backoff_s=self._connect_backoff_s,
                    on_retry=m_retries.inc,
                )
                channel = FramedChannel(sock)
                channel.send(
                    ("hello", {"role": role, "shard": index,
                               "token": token})
                )
                channels.append(channel)
            data, control = channels
            data.send(
                (
                    "configure",
                    {
                        "specs": config.specs,
                        "vectorized": config.vectorized,
                        "index": index,
                        "obs": config.obs,
                        "orphan_timeout_s": config.orphan_timeout_s,
                    },
                )
            )
            if not data.poll(self._handshake_timeout_s):
                raise TransportError(
                    f"worker at {address[0]}:{address[1]} did not "
                    f"acknowledge configure within "
                    f"{self._handshake_timeout_s}s"
                )
            status, detail = data.recv()
            if status != "ok":
                raise TransportError(
                    f"worker at {address[0]}:{address[1]} rejected "
                    f"configure: {detail}"
                )
        except (TransportError, OSError, EOFError) as error:
            for channel in channels:
                channel.close()
            if process is not None:
                try:
                    process.terminate()
                    process.join(1.0)
                except (OSError, ValueError):
                    pass
            if isinstance(error, TransportError):
                raise
            raise TransportError(
                f"handshake with worker at {address[0]}:{address[1]} "
                f"failed: {error!r}"
            ) from error
        m_connects.inc()
        _log.info(
            "worker_connected",
            message=(
                f"shard {index} connected over tcp at "
                f"{address[0]}:{address[1]}"
            ),
            shard=index,
            host=address[0],
            port=address[1],
        )
        return WorkerEndpoint(
            conn=data, control=control, process=process, address=address
        )

    def describe(self) -> str:
        if self._addresses is not None:
            return "tcp:" + ",".join(
                f"{host}:{port}" for host, port in self._addresses
            )
        return "tcp"


def build_transport(
    transport: str | ShardTransport | None,
    ctx: Any = None,
    worker_addresses: Sequence[str] | None = None,
    registry: MetricsRegistry | None = None,
) -> ShardTransport:
    """Resolve the engine's ``transport=`` argument to an instance."""
    if isinstance(transport, ShardTransport):
        return transport
    kind = transport or ("tcp" if worker_addresses else "pipe")
    if kind == "pipe":
        if worker_addresses:
            raise TransportError(
                "worker addresses require the tcp transport"
            )
        return PipeTransport(ctx=ctx)
    if kind in ("tcp", "socket"):
        return SocketTransport(
            addresses=worker_addresses or None,
            registry=registry,
            ctx=ctx,
        )
    raise TransportError(
        f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
    )
