"""Pluggable shard transport: how the router reaches its workers.

:class:`~repro.engine.sharded.ShardedStreamEngine` talks to every
worker over two duplex channels — a **data** channel (batches, collect,
seed, checkpoint, ops snapshots) and a **control** channel (heartbeat
pings, fault injection). Until this module existed the two channels
were hard-wired to ``multiprocessing.Pipe``, which caps the engine at
one box. The transport abstraction keeps the router/worker protocol
byte-for-byte identical and swaps only the plumbing underneath:

* :class:`PipeTransport` — today's behavior and the default: fork one
  worker process per shard, connected by two OS pipes. Zero copies of
  anything over a network, lowest latency, single-host only.
* :class:`SocketTransport` — framed TCP. Each worker is a
  ``python -m repro.shard_worker --listen HOST:PORT`` process that
  may live on another host; with no addresses given the transport
  spawns localhost listeners itself (same process tree as the pipe
  transport, useful for parity testing and ``--transport tcp``).
  Connects and revive-reconnects use **bounded retry with exponential
  backoff and seeded jitter** (the same discipline as the PR 5 sink
  retry), and every retry is counted per shard in
  ``transport_reconnect_retries_total``.

TCP frames are hardened for real networks. Each frame is
``MAGIC(4) | length(4) | seq(8) | crc32(4) | payload``:

* **CRC32** over the payload turns wire corruption into a typed
  :class:`~repro.errors.FrameError` instead of an undefined pickle
  decode failure; the router answers with its bounded revive/reconnect
  path (checkpoint + journal-suffix re-seed), so a corrupt frame can
  delay a batch but never lose or duplicate one.
* **Sequence numbers** (per channel, per direction) suppress duplicate
  delivery when a half-sent frame is re-sent after a stall — a stale
  ``seq`` is skipped and counted — and detect frame loss (a gap raises
  :class:`~repro.errors.FrameError`). Batch-level exactly-once remains
  the job of the ``"q"`` count-skip dedup; frame seqs guard the layer
  below it.
* **Read/write deadlines** are progress-based: any byte moved resets
  them, so a slow link is distinguished from a dead peer (no FIN, no
  RST), which raises :class:`~repro.errors.TransportTimeout` in
  bounded time.
* A send interrupted mid-frame keeps the unsent remainder; the next
  ``send`` transparently finishes the old frame first, so the peer's
  framer never desynchronizes on a transient stall. When the channel
  dies instead, the receiver's magic scan re-synchronizes past any
  torn bytes on a reconnected socket.

Data-channel batch messages come in two shapes, transparent to the
transport: the per-event form ``{"r": records, ...}`` (pickled event
tuples) and the columnar form ``{"c": wire, "n": count, "q": seq}``
where ``wire`` is an :meth:`EventBatch.to_wire` flat buffer (u32
header length + JSON header + raw array segments) and ``"q"``/``"n"``
carry the same per-worker sequence numbering the recovery count-skip
dedup uses for pickled records.

Channel contract (both transports satisfy it):

``send(obj)`` / ``recv()``
    One picklable message per call; ``recv`` raises ``EOFError`` when
    the peer is gone, ``OSError`` on a broken channel.
``poll(timeout)``
    True when a ``recv`` would not block (including at EOF, so the
    caller observes the ``EOFError`` instead of hanging).
``fileno()``
    A selectable file descriptor — the router's writability guard
    (``select`` before ``send``) and the worker's two-channel
    multiplexer both rely on it.
``close()``
    Idempotent teardown.

Because a framed TCP channel keeps a user-space read buffer, a
complete frame may be buffered while the descriptor itself is not
readable — :func:`wait_readable` is the buffer-aware replacement for
``multiprocessing.connection.wait`` used by the worker loop.

Security: frames are pickles. The socket transport is built for
trusted networks (the same trust model as ``multiprocessing``'s own
``Listener``/``Client``); the hello handshake carries a shared token
(``REPRO_TRANSPORT_TOKEN``) that listening workers verify, which keeps
out accidental cross-talk but is not a substitute for network-level
isolation.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import random
import select
import socket
import struct
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.errors import FrameError, TransportError, TransportTimeout
from repro.obs.logging import get_logger
from repro.obs.registry import MetricsRegistry, resolve_registry

_log = get_logger("transport")

TRANSPORTS = ("pipe", "tcp")

#: Frame header: magic, big-endian u32 payload length, u64 channel
#: sequence number, u32 CRC32 of the payload.
FRAME_MAGIC = b"RPF2"
_HEADER = struct.Struct(">4sIQI")
#: Refuse absurd frames instead of allocating gigabytes on a bad peer.
MAX_FRAME_BYTES = 256 * 1024 * 1024
_RECV_CHUNK = 65536

#: Everything a caller must treat as "this channel is gone": OS-level
#: failures, EOF, and the typed frame-integrity errors. Catch this
#: tuple wherever a dead channel should trigger revive/reconnect.
CHANNEL_ERRORS = (OSError, EOFError, TransportError)


def transport_token() -> str:
    """The shared hello token (empty string disables the check)."""
    return os.environ.get("REPRO_TRANSPORT_TOKEN", "")


def parse_hostport(text: str) -> tuple[str, int]:
    """``HOST:PORT`` → ``(host, port)``; host defaults to localhost."""
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise TransportError(
            f"expected HOST:PORT, got {text!r} (e.g. 127.0.0.1:9200)"
        )
    return (host or "127.0.0.1", int(port))


class FrameStats:
    """Frame-integrity counters for one endpoint (both channels share).

    Plain ints for cheap in-process inspection; when ``sink`` maps a
    field name to a registry counter the bump is mirrored there, which
    is how ``SocketTransport`` exports the per-shard
    ``repro_transport_frame_*`` series.
    """

    FIELDS = ("corrupt", "resyncs", "dup_skipped", "deadline_misses")

    __slots__ = ("corrupt", "resyncs", "dup_skipped",
                 "deadline_misses", "_sink")

    def __init__(self, sink: dict[str, Any] | None = None):
        self.corrupt = 0
        self.resyncs = 0
        self.dup_skipped = 0
        self.deadline_misses = 0
        self._sink = sink or {}

    def bump(self, name: str, amount: int = 1) -> None:
        setattr(self, name, getattr(self, name) + amount)
        counter = self._sink.get(name)
        if counter is not None:
            counter.inc(amount)

    def snapshot(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.FIELDS}


class FramedChannel:
    """One duplex message channel over a connected TCP socket.

    Messages are ``MAGIC | u32 length | u64 seq | u32 crc32`` frames
    (header layout in :data:`_HEADER`) followed by the pickled payload.
    The channel keeps its own read buffer, so :meth:`poll` reports a
    buffered complete frame as ready even when the descriptor is quiet
    — callers multiplexing channels must use :func:`wait_readable`,
    not a raw ``select``.

    Integrity properties (see the module docstring): CRC32 rejects
    corrupt payloads with :class:`~repro.errors.FrameError`; sequence
    numbers skip duplicate frames and turn frame loss into a typed
    error; deadlines are progress-based so slow links survive while
    silently dead peers raise :class:`~repro.errors.TransportTimeout`;
    a send interrupted mid-frame parks the remainder and finishes it
    on the next send instead of desynchronizing the peer's framer.
    """

    __slots__ = (
        "_sock", "_rbuf", "_eof", "_send_seq", "_recv_seq",
        "_wpending", "read_deadline_s", "write_deadline_s", "stats",
    )

    def __init__(
        self,
        sock: socket.socket,
        read_deadline_s: float | None = None,
        write_deadline_s: float | None = None,
        stats: FrameStats | None = None,
    ):
        sock.setblocking(True)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - not every family has it
            pass
        self._sock = sock
        self._rbuf = bytearray()
        self._eof = False
        self._send_seq = 0
        self._recv_seq = 0
        self._wpending = b""
        self.read_deadline_s = read_deadline_s
        self.write_deadline_s = write_deadline_s
        self.stats = stats if stats is not None else FrameStats()

    # ----- framing ---------------------------------------------------------

    def _align_buffer(self) -> None:
        """Discard garbage so the buffer starts at a magic (or is short).

        Garbage appears when a peer died mid-frame and the tail of the
        torn frame shares the socket with fresh traffic; scanning to
        the next magic re-synchronizes the framer. Discards are counted
        as ``resyncs``.
        """
        if not self._rbuf or self._rbuf.startswith(FRAME_MAGIC):
            return
        at = self._rbuf.find(FRAME_MAGIC)
        if at == -1:
            # Keep a magic-length tail: the magic may be split across
            # recv chunks.
            keep = len(FRAME_MAGIC) - 1
            drop = max(0, len(self._rbuf) - keep)
            if drop:
                del self._rbuf[:drop]
                self.stats.bump("resyncs")
            return
        del self._rbuf[:at]
        self.stats.bump("resyncs")

    def _buffered_header(self) -> tuple[int, int, int] | None:
        """``(length, seq, crc)`` of a complete buffered frame, else None."""
        self._align_buffer()
        if len(self._rbuf) < _HEADER.size:
            return None
        magic, length, seq, crc = _HEADER.unpack_from(self._rbuf)
        if magic != FRAME_MAGIC:  # pragma: no cover - align guarantees it
            raise FrameError("framer lost magic alignment")
        if length > MAX_FRAME_BYTES:
            raise TransportError(
                f"frame of {length} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte limit"
            )
        if len(self._rbuf) < _HEADER.size + length:
            return None
        return length, seq, crc

    @property
    def buffered(self) -> bool:
        """True when a complete frame is already in the read buffer."""
        return self._buffered_header() is not None

    # ----- channel contract ------------------------------------------------

    def _write(self, data: bytes) -> None:
        """Send ``data``, parking the unsent remainder on a stall.

        Uses ``socket.send`` in a loop (not ``sendall``) so the exact
        progress is known when a write deadline or transient error
        interrupts the frame; the remainder is parked in
        ``_wpending`` and transparently finished by the next call, so
        the peer's framer never sees a torn frame from a stall.
        """
        view = memoryview(self._wpending + data)
        self._wpending = b""
        sent = 0
        if self.write_deadline_s is not None:
            self._sock.settimeout(self.write_deadline_s)
        try:
            while sent < len(view):
                try:
                    sent += self._sock.send(view[sent:])
                except (TimeoutError, socket.timeout, BlockingIOError):
                    self._wpending = bytes(view[sent:])
                    self.stats.bump("deadline_misses")
                    raise TransportTimeout(
                        f"write deadline ({self.write_deadline_s}s) "
                        f"missed with {len(view) - sent} bytes unsent"
                    ) from None
        finally:
            try:
                self._sock.settimeout(None)
            except OSError:  # pragma: no cover - socket died mid-send
                pass

    def send(self, obj: Any) -> None:
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        self._send_seq += 1
        header = _HEADER.pack(
            FRAME_MAGIC, len(data), self._send_seq,
            zlib.crc32(data) & 0xFFFFFFFF,
        )
        self._write(header + data)

    def _fill(self, deadline: float | None) -> None:
        """Read at least one chunk into the buffer (progress-based)."""
        while True:
            if self._eof:
                raise EOFError("peer closed the framed channel")
            remaining: float | None = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self.stats.bump("deadline_misses")
                    raise TransportTimeout(
                        f"read deadline ({self.read_deadline_s}s) "
                        "missed: no bytes from peer"
                    )
            try:
                ready = select.select([self._sock], [], [], remaining)[0]
            except (OSError, ValueError):
                self._eof = True
                raise EOFError("peer closed the framed channel") from None
            if not ready:
                continue
            chunk = self._sock.recv(_RECV_CHUNK)
            if not chunk:
                self._eof = True
                raise EOFError("peer closed the framed channel")
            self._rbuf += chunk
            return

    def recv(self) -> Any:
        while True:
            header = self._buffered_header()
            if header is None:
                deadline = (
                    None if self.read_deadline_s is None
                    else time.monotonic() + self.read_deadline_s
                )
                # _fill returns after any progress; the deadline is
                # re-armed per chunk, so a slow trickle keeps going.
                self._fill(deadline)
                continue
            length, seq, crc = header
            start = _HEADER.size
            payload = bytes(self._rbuf[start:start + length])
            del self._rbuf[:start + length]
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                self.stats.bump("corrupt")
                raise FrameError(
                    f"frame {seq} failed its CRC32 check "
                    f"({length} bytes); channel is not trustworthy"
                )
            if seq <= self._recv_seq:
                # Duplicate delivery (re-sent frame after a stall):
                # drop it and keep waiting for the next fresh frame.
                self.stats.bump("dup_skipped")
                continue
            if seq > self._recv_seq + 1:
                raise FrameError(
                    f"frame sequence gap: expected {self._recv_seq + 1}, "
                    f"got {seq} ({seq - self._recv_seq - 1} frames lost)"
                )
            self._recv_seq = seq
            return pickle.loads(payload)

    def poll(self, timeout: float | None = 0.0) -> bool:
        deadline = (
            None if timeout is None else time.monotonic() + max(0.0, timeout)
        )
        while True:
            if self.buffered or self._eof:
                return True
            remaining: float | None = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining < 0:
                    return False
            try:
                ready = select.select([self._sock], [], [], remaining)[0]
            except (OSError, ValueError):
                self._eof = True  # closed under us: recv will raise
                return True
            if not ready:
                return False
            try:
                chunk = self._sock.recv(_RECV_CHUNK)
            except OSError:
                self._eof = True
                return True
            if not chunk:
                self._eof = True
                return True
            self._rbuf += chunk

    def fileno(self) -> int:
        return self._sock.fileno()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - double close is fine
            pass


def wait_readable(
    channels: Sequence[Any], timeout: float | None = None
) -> list[Any]:
    """Buffer-aware multi-channel wait.

    Returns the channels with a message ready: either a complete frame
    sitting in a :class:`FramedChannel` buffer, or a readable
    descriptor (pipe connections have no user-space buffer, so the
    descriptor is the whole truth for them). Blocks up to ``timeout``
    (None = forever); an empty list means the timeout elapsed.
    """
    ready = [
        chan for chan in channels if getattr(chan, "buffered", False)
    ]
    if ready:
        return ready
    try:
        from multiprocessing.connection import wait as _mp_wait

        return list(_mp_wait(channels, timeout))
    except OSError:
        return []


# ----- endpoints ------------------------------------------------------------


@dataclass
class WorkerEndpoint:
    """What a transport hands the router for one live worker."""

    conn: Any
    control: Any
    #: The locally spawned process, or None for a remote worker.
    process: Any = None
    #: Remote address, when there is one (diagnostics only).
    address: tuple[str, int] | None = None
    #: Frame-integrity counters shared by both channels (tcp only).
    frame_stats: Any = None


@dataclass
class WorkerConfig:
    """Everything a worker needs to build its engine, transport-agnostic.

    Queries travel as **text** (``str(query)`` round-trips through the
    parser — the same property engine checkpoints already rely on), so
    the exact same configure document works over a pipe to a forked
    child and over TCP to a worker on another host.
    """

    specs: list[tuple[str, str]] = field(default_factory=list)
    vectorized: bool = False
    obs: dict[str, Any] = field(default_factory=dict)
    #: Self-terminate after this many seconds without any router
    #: traffic (heartbeats included); None disables the guard.
    orphan_timeout_s: float | None = None


class ShardTransport:
    """Factory for worker endpoints; one per sharded engine."""

    def bind(self, config: WorkerConfig) -> None:
        """Fix the worker configuration before the first ``open``."""
        self._config = config

    @property
    def config(self) -> WorkerConfig:
        config = getattr(self, "_config", None)
        if config is None:
            raise TransportError("transport used before bind()")
        return config

    def open(self, index: int) -> WorkerEndpoint:
        raise NotImplementedError

    def open_member(self, index: int, member: Any) -> WorkerEndpoint:
        """Open shard ``index`` on a specific registry member.

        ``member`` carries ``member_id`` and ``address`` (None for a
        local-fork member). The default ignores placement — the pipe
        transport always forks locally, so membership is bookkeeping —
        while the socket transport connects to the member's address or
        to a shared locally spawned listener.
        """
        return self.open(index)

    def close(self) -> None:
        """Release transport-wide resources (endpoints are closed by
        the engine's per-worker teardown)."""

    def describe(self) -> str:
        return type(self).__name__


class PipeTransport(ShardTransport):
    """Fork-per-shard over two OS pipes — the classic local transport."""

    def __init__(self, ctx: Any = None, start_method: str | None = None):
        if ctx is None:
            if start_method is None:
                methods = mp.get_all_start_methods()
                start_method = (
                    "fork" if "fork" in methods else methods[0]
                )
            ctx = mp.get_context(start_method)
        self._ctx = ctx

    def open(self, index: int) -> WorkerEndpoint:
        from repro.engine.sharded import _shard_worker

        config = self.config
        data_parent, data_child = self._ctx.Pipe(duplex=True)
        ctl_parent, ctl_child = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_shard_worker,
            args=(
                data_child,
                ctl_child,
                config.specs,
                config.vectorized,
                index,
                config.obs,
                config.orphan_timeout_s,
            ),
            daemon=True,
        )
        process.start()
        data_child.close()
        ctl_child.close()
        return WorkerEndpoint(
            conn=data_parent, control=ctl_parent, process=process
        )

    def describe(self) -> str:
        return "pipe"


def connect_with_backoff(
    address: tuple[str, int],
    attempts: int = 8,
    backoff_s: float = 0.05,
    max_delay_s: float = 2.0,
    connect_timeout_s: float = 5.0,
    on_retry: Callable[[], None] | None = None,
    rng: random.Random | None = None,
) -> socket.socket:
    """TCP connect with bounded retry, exponential backoff and jitter.

    The jitter factor is drawn from a ``random.Random`` seeded from
    ``REPRO_FAULT_SEED`` (like the sink-retry helper), so chaos runs
    replay their reconnect timing deterministically. Raises
    :class:`~repro.errors.TransportError` once the budget is spent.
    """
    if attempts < 1:
        raise ValueError("attempts must be at least 1")
    if rng is None:
        try:
            seed = int(os.environ.get("REPRO_FAULT_SEED", "0") or 0)
        except ValueError:
            seed = 0
        rng = random.Random(seed ^ hash(address) & 0xFFFFFFFF)
    last: Exception | None = None
    for attempt in range(attempts):
        try:
            return socket.create_connection(
                address, timeout=connect_timeout_s
            )
        except OSError as error:
            last = error
        if on_retry is not None:
            on_retry()
        if attempt + 1 < attempts:
            delay = min(max_delay_s, backoff_s * (2 ** attempt))
            # Jitter in [0.5, 1.5): de-synchronizes a fleet of routers
            # reconnecting to the same revived worker.
            time.sleep(delay * (0.5 + rng.random()))
    raise TransportError(
        f"could not connect to worker at {address[0]}:{address[1]} "
        f"after {attempts} attempts ({last!r})"
    )


class SocketTransport(ShardTransport):
    """Length-prefixed framed TCP to workers that may live anywhere.

    Two modes:

    * ``addresses`` given — one ``HOST:PORT`` per shard, each a running
      ``python -m repro.shard_worker --listen`` process. The transport
      connects (with backoff) and ships the configure document; a
      revive re-connects to the same listener, whose serve loop accepts
      a fresh session and rebuilds its engine from the router's seed.
      ``open`` returns no process handle — the worker's lifetime is
      not ours to manage.
    * no addresses — the transport **spawns** one localhost listener
      process per shard (the listening socket is bound and put in
      listen state in the router first, so the connect can never race
      the child's accept). Same wire protocol, same process-tree
      semantics as the pipe transport — this is what ``--transport
      tcp`` without worker addresses does, and what the parity suite
      pins against the pipe transport.
    """

    def __init__(
        self,
        addresses: Sequence[str | tuple[str, int]] | None = None,
        host: str = "127.0.0.1",
        connect_attempts: int = 8,
        connect_backoff_s: float = 0.05,
        handshake_timeout_s: float = 10.0,
        registry: MetricsRegistry | None = None,
        ctx: Any = None,
        read_deadline_s: float | None = None,
        write_deadline_s: float | None = None,
    ):
        self._addresses: list[tuple[str, int]] | None = None
        if addresses is not None:
            self._addresses = [
                parse_hostport(a) if isinstance(a, str) else (a[0], int(a[1]))
                for a in addresses
            ]
        self._host = host
        self._connect_attempts = connect_attempts
        self._connect_backoff_s = connect_backoff_s
        self._handshake_timeout_s = handshake_timeout_s
        self._read_deadline_s = read_deadline_s
        self._write_deadline_s = write_deadline_s
        registry = resolve_registry(registry)
        self._registry = registry
        if ctx is None:
            methods = mp.get_all_start_methods()
            ctx = mp.get_context(
                "fork" if "fork" in methods else methods[0]
            )
        self._ctx = ctx
        self._m_connects: dict[int, Any] = {}
        self._m_retries: dict[int, Any] = {}
        self._m_frames: dict[int, dict[str, Any]] = {}
        #: member_id -> (address, process) for listeners this transport
        #: spawned on behalf of local registry members.
        self._member_listeners: dict[str, tuple[tuple[str, int], Any]] = {}

    def _counters(self, index: int) -> tuple[Any, Any]:
        if index not in self._m_connects:
            self._m_connects[index] = self._registry.counter(
                "transport_connects_total",
                "worker channel connections established by the transport",
                shard=str(index),
            )
            self._m_retries[index] = self._registry.counter(
                "transport_reconnect_retries_total",
                "worker connect attempts that failed and were retried",
                shard=str(index),
            )
        return self._m_connects[index], self._m_retries[index]

    def _frame_sink(self, index: int) -> dict[str, Any]:
        if index not in self._m_frames:
            shard = str(index)
            self._m_frames[index] = {
                "corrupt": self._registry.counter(
                    "repro_transport_frame_corrupt_total",
                    "frames rejected by the per-frame CRC32 check",
                    shard=shard,
                ),
                "resyncs": self._registry.counter(
                    "repro_transport_frame_resyncs_total",
                    "framer re-alignments that discarded torn bytes",
                    shard=shard,
                ),
                "dup_skipped": self._registry.counter(
                    "repro_transport_frame_dup_skipped_total",
                    "duplicate frames dropped by sequence-number dedup",
                    shard=shard,
                ),
                "deadline_misses": self._registry.counter(
                    "repro_transport_frame_deadline_misses_total",
                    "read/write deadlines missed with zero progress",
                    shard=shard,
                ),
            }
        return self._m_frames[index]

    def open(self, index: int) -> WorkerEndpoint:
        if self._addresses is not None:
            if index >= len(self._addresses):
                raise TransportError(
                    f"shard {index} has no worker address (got "
                    f"{len(self._addresses)} for more shards)"
                )
            return self._connect(index, self._addresses[index], None)
        return self._spawn(index)

    def open_member(self, index: int, member: Any) -> WorkerEndpoint:
        address = getattr(member, "address", None)
        if address is not None:
            return self._connect(index, tuple(address), None)
        member_id = getattr(member, "member_id", f"local-{index}")
        address = self._member_address(member_id)
        return self._connect(index, address, None)

    def _member_address(self, member_id: str) -> tuple[str, int]:
        """Address of the (spawned-on-demand) listener for a local member.

        One listener process per local member, shared by every shard
        the member owns — the endpoint therefore carries no process
        handle (killing it on a single-shard revive would take the
        member's other shards with it); :meth:`close` reaps them.
        """
        entry = self._member_listeners.get(member_id)
        if entry is not None:
            return entry[0]
        address, process = self._spawn_listener()
        self._member_listeners[member_id] = (address, process)
        return address

    def member_process(self, member_id: str) -> Any:
        """The spawned listener process for a local member (tests)."""
        entry = self._member_listeners.get(member_id)
        return entry[1] if entry else None

    def drop_member(self, member_id: str) -> None:
        """Forget (and reap) a spawned local member listener."""
        entry = self._member_listeners.pop(member_id, None)
        if entry is None:
            return
        _, process = entry
        if process is not None:
            try:
                process.terminate()
                process.join(1.0)
            except (OSError, ValueError, AssertionError):
                pass

    def _spawn_listener(self) -> tuple[tuple[str, int], Any]:
        from repro.shard_worker import serve_socket

        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.setsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
            )
            listener.bind((self._host, 0))
            listener.listen(4)
            address = listener.getsockname()
            process = self._ctx.Process(
                target=serve_socket,
                args=(listener,),
                kwargs={
                    "orphan_timeout_s": self.config.orphan_timeout_s,
                },
                daemon=True,
            )
            process.start()
        finally:
            listener.close()
        return address, process

    def _spawn(self, index: int) -> WorkerEndpoint:
        address, process = self._spawn_listener()
        return self._connect(index, address, process)

    def _connect(
        self,
        index: int,
        address: tuple[str, int],
        process: Any,
    ) -> WorkerEndpoint:
        m_connects, m_retries = self._counters(index)
        config = self.config
        token = transport_token()
        session = f"s{index}-{os.getpid()}-{time.monotonic_ns()}"
        stats = FrameStats(self._frame_sink(index))
        channels: list[FramedChannel] = []
        try:
            for role in ("data", "control"):
                sock = connect_with_backoff(
                    address,
                    attempts=self._connect_attempts,
                    backoff_s=self._connect_backoff_s,
                    on_retry=m_retries.inc,
                )
                channel = FramedChannel(
                    sock,
                    read_deadline_s=self._read_deadline_s,
                    write_deadline_s=self._write_deadline_s,
                    stats=stats,
                )
                channel.send(
                    ("hello", {"role": role, "shard": index,
                               "token": token, "session": session})
                )
                channels.append(channel)
            data, control = channels
            data.send(
                (
                    "configure",
                    {
                        "specs": config.specs,
                        "vectorized": config.vectorized,
                        "index": index,
                        "obs": config.obs,
                        "orphan_timeout_s": config.orphan_timeout_s,
                    },
                )
            )
            if not data.poll(self._handshake_timeout_s):
                raise TransportError(
                    f"worker at {address[0]}:{address[1]} did not "
                    f"acknowledge configure within "
                    f"{self._handshake_timeout_s}s"
                )
            status, detail = data.recv()
            if status != "ok":
                raise TransportError(
                    f"worker at {address[0]}:{address[1]} rejected "
                    f"configure: {detail}"
                )
        except (TransportError, OSError, EOFError) as error:
            for channel in channels:
                channel.close()
            if process is not None:
                try:
                    process.terminate()
                    process.join(1.0)
                except (OSError, ValueError):
                    pass
            if isinstance(error, TransportError):
                raise
            raise TransportError(
                f"handshake with worker at {address[0]}:{address[1]} "
                f"failed: {error!r}"
            ) from error
        m_connects.inc()
        _log.info(
            "worker_connected",
            message=(
                f"shard {index} connected over tcp at "
                f"{address[0]}:{address[1]}"
            ),
            shard=index,
            host=address[0],
            port=address[1],
        )
        return WorkerEndpoint(
            conn=data, control=control, process=process, address=address,
            frame_stats=stats,
        )

    def close(self) -> None:
        for member_id in list(self._member_listeners):
            self.drop_member(member_id)

    def describe(self) -> str:
        if self._addresses is not None:
            return "tcp:" + ",".join(
                f"{host}:{port}" for host, port in self._addresses
            )
        return "tcp"


def build_transport(
    transport: str | ShardTransport | None,
    ctx: Any = None,
    worker_addresses: Sequence[str] | None = None,
    registry: MetricsRegistry | None = None,
) -> ShardTransport:
    """Resolve the engine's ``transport=`` argument to an instance."""
    if isinstance(transport, ShardTransport):
        return transport
    kind = transport or ("tcp" if worker_addresses else "pipe")
    if kind == "pipe":
        if worker_addresses:
            raise TransportError(
                "worker addresses require the tcp transport"
            )
        return PipeTransport(ctx=ctx)
    if kind in ("tcp", "socket"):
        return SocketTransport(
            addresses=worker_addresses or None,
            registry=registry,
            ctx=ctx,
        )
    raise TransportError(
        f"unknown transport {transport!r}; expected one of {TRANSPORTS}"
    )
