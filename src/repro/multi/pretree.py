"""PreTree — shared prefix counters for a multi-query workload.

Paper Sec. 4.1: once A-Seq maintains the counts of every prefix of a
pattern, queries that share a prefix can share those counters. The
PreTree organizes the counters of a whole workload as a trie over
pattern *elements*; each shared prefix is one path and each query owns
the node where its pattern ends.

Negation needs one refinement beyond the paper's figure. Consider
``Q1 = (A, B, C)`` and ``Q2 = (A, B, !N, D)``: the Recounting Rule must
wipe the ``(A, B)`` count for Q2 when an ``N`` arrives, but Q1 still
needs the unwiped count. The trie therefore materializes each negation
as its own *guard node*: a guard node shadows its parent's count
(receiving every increment the parent receives) and is the thing the
negative arrival resets. Children behind the negation read the guard's
count instead of the parent's, so sharing stays exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import PlanError
from repro.query.ast import (
    NegatedType,
    PatternElement,
    PositiveType,
    Query,
)


@dataclass
class _Node:
    """One trie node: a positive position or a negation guard."""

    index: int
    parent: int  # -1 for children of the root
    element: PatternElement
    depth: int  # positive positions consumed up to and including here
    children: dict[PatternElement, int] = field(default_factory=dict)

    @property
    def is_guard(self) -> bool:
        return isinstance(self.element, NegatedType)


class PreTreeLayout:
    """The static trie shared by all counter instances.

    Built once per workload; immutable afterwards. All queries must
    start with the same first element (the shared START type) — the
    engine builds one layout per distinct start element.
    """

    def __init__(self, queries: Sequence[Query]):
        if not queries:
            raise PlanError("a PreTree needs at least one query")
        starts = {q.pattern.elements[0] for q in queries}
        if len(starts) != 1:
            raise PlanError(
                "all queries of one PreTree must share the START element; "
                "build one tree per start type"
            )
        self.start_label = queries[0].pattern.positive_types[0]
        self.start_types = frozenset(queries[0].pattern.start_alternatives)
        self.nodes: list[_Node] = []
        #: type name -> positive node indexes, deepest first.
        self.update_nodes: dict[str, list[int]] = {}
        #: negated type name -> guard node indexes it resets.
        self.guard_nodes: dict[str, list[int]] = {}
        #: query name -> terminal node index.
        self.terminal_of: dict[str, int] = {}
        #: query name -> event types completing that query.
        self.trigger_of: dict[str, list[str]] = {}
        self._children_of_root: dict[PatternElement, int] = {}
        for query in queries:
            self._insert(query)
        # Deepest-first update order prevents an event from chaining
        # with itself when a type occurs at several depths.
        for indexes in self.update_nodes.values():
            indexes.sort(key=lambda i: self.nodes[i].depth, reverse=True)
        # Pre-compile the per-type update plan so the per-event hot path
        # is a flat tuple walk: (node, parent, guard children).
        self.update_plan: dict[str, tuple[tuple[int, int, tuple[int, ...]], ...]] = {}
        for event_type, indexes in self.update_nodes.items():
            plan = []
            for index in indexes:
                node = self.nodes[index]
                guards = tuple(
                    child
                    for element, child in node.children.items()
                    if isinstance(element, NegatedType)
                )
                plan.append((index, node.parent, guards))
            self.update_plan[event_type] = tuple(plan)

    def _insert(self, query: Query) -> None:
        if query.name is None:
            raise PlanError("queries in a shared workload must be named")
        if query.name in self.terminal_of:
            raise PlanError(f"duplicate query name {query.name!r}")
        _check_shareable(query)
        elements = query.pattern.elements
        node_index = -1
        children = self._children_of_root
        depth = 0
        for element in elements:
            if isinstance(element, PositiveType):
                depth += 1
            child = children.get(element)
            if child is None:
                child = self._add_node(node_index, element, depth, children)
            node_index = child
            children = self.nodes[node_index].children
        self.terminal_of[query.name] = node_index
        for trigger in query.pattern.trigger_alternatives:
            self.trigger_of.setdefault(query.name, []).append(trigger)

    def _add_node(
        self,
        parent: int,
        element: PatternElement,
        depth: int,
        siblings: dict[PatternElement, int],
    ) -> int:
        index = len(self.nodes)
        node = _Node(index, parent, element, depth)
        self.nodes.append(node)
        siblings[element] = index
        if isinstance(element, PositiveType):
            for name in element.alternatives:
                self.update_nodes.setdefault(name, []).append(index)
        else:
            self.guard_nodes.setdefault(element.name, []).append(index)
        return index

    # ----- introspection ---------------------------------------------------

    @property
    def size(self) -> int:
        """Total trie nodes (counters per tree instance)."""
        return len(self.nodes)

    def path_of(self, query_name: str) -> list[PatternElement]:
        """Root-to-terminal elements for a query (diagnostics)."""
        path: list[PatternElement] = []
        index = self.terminal_of[query_name]
        while index >= 0:
            node = self.nodes[index]
            path.append(node.element)
            index = node.parent
        path.reverse()
        return path

    def render(self) -> str:
        """Multi-line ASCII rendering of the trie (debugging, examples)."""
        lines = [f"PreTree(start={self.start_label})"]

        def visit(children: dict[PatternElement, int], indent: int) -> None:
            for element, index in children.items():
                owners = [
                    name
                    for name, terminal in self.terminal_of.items()
                    if terminal == index
                ]
                suffix = f"  <- {', '.join(owners)}" if owners else ""
                lines.append("  " * indent + f"{element}{suffix}")
                visit(self.nodes[index].children, indent + 1)

        visit(self._children_of_root, 1)
        return "\n".join(lines)

    def root_children(self) -> Iterator[int]:
        return iter(self._children_of_root.values())


class PreTree:
    """One counter instance over a :class:`PreTreeLayout`.

    With ``implicit_start=True`` this is the per-START-instance counter
    of the SEM-style shared engine (slot semantics of
    :class:`~repro.core.prefix_counter.PrefixCounter`, generalized from
    a chain to a tree): the depth-1 node is pinned at count 1, and its
    guard children start at 1 so they shadow it. With
    ``implicit_start=False`` it is a single global tree for unwindowed
    workloads, where START arrivals increment the depth-1 node.
    """

    __slots__ = ("layout", "counts", "_implicit_start", "exp")

    def __init__(
        self,
        layout: PreTreeLayout,
        implicit_start: bool = False,
        exp: int | None = None,
    ):
        self.layout = layout
        self.counts = [0] * layout.size
        self._implicit_start = implicit_start
        self.exp = exp
        if implicit_start:
            for index in layout.root_children():
                node = layout.nodes[index]
                self.counts[index] = 1
                self._feed_guards(node, 1)

    def update(self, event_type: str) -> None:
        """Fold an arrival of ``event_type`` into every matching node."""
        plan = self.layout.update_plan.get(event_type)
        if plan:
            self.apply(plan)

    def apply(
        self, plan: tuple[tuple[int, int, tuple[int, ...]], ...]
    ) -> None:
        """Run one pre-compiled per-type update plan (the hot path).

        Each positive node of the type gains its parent's count
        (Lemma 1 along the tree path); guard children of the updated
        node receive the same delta so they keep shadowing it. In
        per-START mode the depth-1 (START) node belongs to the instance
        itself and is skipped — a fresh START spawns a fresh tree.
        """
        counts = self.counts
        implicit = self._implicit_start
        for index, parent, guards in plan:  # deepest first
            if parent == -1:
                if implicit:
                    continue
                delta = 1
            else:
                delta = counts[parent]
            if delta:
                counts[index] += delta
                for guard in guards:
                    counts[guard] += delta

    def _feed_guards(self, node: _Node, delta: int) -> None:
        counts = self.counts
        for element, child_index in node.children.items():
            if isinstance(element, NegatedType):
                counts[child_index] += delta

    def reset_guards(self, negated_type: str) -> None:
        """Recounting Rule: wipe every guard node of the negated type."""
        for index in self.layout.guard_nodes.get(negated_type, ()):
            self.counts[index] = 0

    def count_at(self, node_index: int) -> int:
        return self.counts[node_index]

    def result_of(self, query_name: str) -> int:
        """This instance's contribution to one query's COUNT."""
        return self.counts[self.layout.terminal_of[query_name]]

    def inspect(self) -> dict[str, object]:
        """JSON-serializable state summary of this counter instance."""
        layout = self.layout
        return {
            "kind": "pretree",
            "exp": self.exp,
            "implicit_start": self._implicit_start,
            "size": layout.size,
            "counts": list(self.counts),
            "terminals": {
                name: self.counts[index]
                for name, index in layout.terminal_of.items()
            },
        }


def _check_shareable(query: Query) -> None:
    """Shared engines support the paper's experimental query class."""
    from repro.query.ast import AggKind

    if query.aggregate.kind is not AggKind.COUNT:
        raise PlanError(
            "shared multi-query engines support AGG COUNT (as in the "
            "paper's Sec. 6 experiments); run value aggregates unshared"
        )
    if query.predicates or query.group_by:
        raise PlanError(
            "shared multi-query engines do not support predicates or "
            "GROUP BY; run such queries unshared"
        )
    if query.pattern.has_kleene:
        raise PlanError(
            "shared multi-query engines do not support Kleene patterns; "
            "run such queries unshared"
        )


def shared_window_ms(queries: Sequence[Query]) -> int | None:
    """The workload's common window, validating it is indeed common."""
    windows = {q.window.size_ms if q.window else None for q in queries}
    if len(windows) != 1:
        raise PlanError(
            "queries in one shared group must use the same WITHIN window"
        )
    return next(iter(windows))
