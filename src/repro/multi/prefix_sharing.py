"""Prefix-shared execution of a multi-query workload (paper Sec. 4.1).

All queries are folded into per-START-type
:class:`~repro.multi.pretree.PreTreeLayout` tries. An arrival updates
each shared trie node once, however many queries read it — the paper's
"sharing for free". Window support follows SEM: one PreTree instance
per active START event, expiring in creation order.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable, Sequence

from repro.errors import PlanError
from repro.events.event import Event
from repro.multi.pretree import PreTree, PreTreeLayout, shared_window_ms
from repro.obs.funnel import FunnelRecorder, resolve_funnel
from repro.query.ast import Query


class _TreeGroup:
    """All queries whose patterns begin with the same element."""

    __slots__ = ("layout", "trees", "global_tree", "window_ms", "fq")

    def __init__(self, queries: Sequence[Query], window_ms: int | None):
        self.layout = PreTreeLayout(queries)
        self.window_ms = window_ms
        self.trees: deque[PreTree] = deque()
        self.global_tree = (
            PreTree(self.layout) if window_ms is None else None
        )
        #: Group-level funnel handle (``pretree:<start>``), set by the
        #: engine when instrumentation is on. Shared trie work cannot be
        #: attributed to a single owning query.
        self.fq = None

    def expire(self, now: int) -> None:
        trees = self.trees
        expired = 0
        while trees and trees[0].exp <= now:
            trees.popleft()
            expired += 1
        if expired and self.fq is not None:
            self.fq.expired.inc(expired)

    def live_trees(self) -> Iterable[PreTree]:
        if self.global_tree is not None:
            return (self.global_tree,)
        return self.trees

    def counter_instances(self) -> int:
        if self.global_tree is not None:
            return self.layout.size
        return len(self.trees) * self.layout.size


class PrefixSharedEngine:
    """Shared A-Seq evaluation of COUNT queries with common prefixes.

    Queries must be named, COUNT-only, predicate-free and share one
    WITHIN window (the class of workloads in the paper's Sec. 6.3).

    >>> from repro.query import seq
    >>> queries = [
    ...     seq("A", "B", "C").count().within(ms=100).named("q1").build(),
    ...     seq("A", "B", "D").count().within(ms=100).named("q2").build(),
    ... ]
    >>> engine = PrefixSharedEngine(queries)
    >>> for i, name in enumerate("ABCD"):
    ...     _ = engine.process(Event(name, ts=i))
    >>> engine.result()
    {'q1': 1, 'q2': 1}
    """

    def __init__(
        self,
        queries: Sequence[Query],
        funnel: FunnelRecorder | None = None,
    ):
        if not queries:
            raise PlanError("empty workload")
        self._window_ms = shared_window_ms(queries)
        groups: dict[object, list[Query]] = {}
        for query in queries:
            groups.setdefault(query.pattern.elements[0], []).append(query)
        self._groups = [
            _TreeGroup(group, self._window_ms) for group in groups.values()
        ]
        self._queries = {q.name: q for q in queries}
        funnel = resolve_funnel(funnel)
        self.funnel = funnel
        self._funnel_on = funnel.enabled
        #: Per-query handles record routed/passed/emitted (the engine's
        #: query class is predicate-free, so routed == passed); shared
        #: trie extends/expires live under each group's ``pretree:...``
        #: pseudo-query.
        self._fq_of = {
            name: funnel.for_query(name) for name in self._queries
        }
        self._funnel_routes: dict[str, list] = {}
        if funnel.enabled:
            for group in self._groups:
                group.fq = funnel.for_query(
                    f"pretree:{group.layout.start_label}"
                )
            for name, query in self._queries.items():
                handle = self._fq_of[name]
                for event_type in query.relevant_types:
                    self._funnel_routes.setdefault(event_type, []).append(
                        handle
                    )
        #: trigger type -> query names it completes, per group.
        self._triggers: dict[str, list[tuple[_TreeGroup, str]]] = {}
        for group in self._groups:
            for name, triggers in group.layout.trigger_of.items():
                for trigger in triggers:
                    self._triggers.setdefault(trigger, []).append(
                        (group, name)
                    )
        self._now = 0
        self.events_processed = 0
        self.peak_counters = 0

    # ----- ingestion ------------------------------------------------------

    def process(self, event: Event) -> dict[str, int] | None:
        """Ingest one event; returns fresh counts for completed queries."""
        self._now = max(self._now, event.ts)
        self.events_processed += 1
        event_type = event.event_type
        funnel_on = self._funnel_on
        if funnel_on:
            for handle in self._funnel_routes.get(event_type, ()):
                handle.routed.inc()
                handle.passed.inc()
                handle.note_ts(event.ts)
        for group in self._groups:
            if group.window_ms is not None:
                group.expire(event.ts)
            layout = group.layout
            resets = event_type in layout.guard_nodes
            plan = layout.update_plan.get(event_type)
            if resets or plan:
                live = group.live_trees()
                for tree in live:
                    if resets:
                        tree.reset_guards(event_type)
                    if plan:
                        tree.apply(plan)
                if funnel_on:
                    touched = len(live)
                    if resets:
                        group.fq.blocked.inc(touched)
                    if plan:
                        group.fq.extended.inc(touched)
            if (
                group.window_ms is not None
                and event_type in layout.start_types
            ):
                group.trees.append(
                    PreTree(
                        layout,
                        implicit_start=True,
                        exp=event.ts + group.window_ms,
                    )
                )
        current = self.current_counters()
        if current > self.peak_counters:
            self.peak_counters = current

        completed = self._triggers.get(event_type)
        if not completed:
            return None
        if funnel_on:
            for _group, name in completed:
                self._fq_of[name].emitted.inc()
        return {
            name: self._query_result(group, name)
            for group, name in completed
        }

    # ----- results ----------------------------------------------------------

    def result(self, query_name: str | None = None) -> Any:
        """Counts for one query, or for the whole workload as a dict."""
        for group in self._groups:
            if group.window_ms is not None:
                group.expire(self._now)
        if query_name is not None:
            for group in self._groups:
                if query_name in group.layout.terminal_of:
                    return self._query_result(group, query_name)
            raise KeyError(query_name)
        results: dict[str, int] = {}
        for group in self._groups:
            for name in group.layout.terminal_of:
                results[name] = self._query_result(group, name)
        return results

    def _query_result(self, group: _TreeGroup, name: str) -> int:
        return sum(tree.result_of(name) for tree in group.live_trees())

    # ----- introspection --------------------------------------------------------

    def current_counters(self) -> int:
        """Live trie-node counters (the paper's memory metric)."""
        return sum(group.counter_instances() for group in self._groups)

    def current_objects(self) -> int:
        return self.current_counters()

    def describe(self) -> str:
        """Human-readable sharing structure (examples, diagnostics)."""
        return "\n\n".join(group.layout.render() for group in self._groups)

    def explain(self) -> dict[str, Any]:
        """Structured plan: trie groups and shared prefixes (see
        :mod:`repro.obs.explain`)."""
        from repro.obs.explain import explain_engine
        return explain_engine(self)

    def inspect(self, max_trees: int = 4) -> dict[str, Any]:
        """JSON-serializable state summary (admin endpoints)."""
        groups = []
        for group in self._groups:
            trees = list(group.live_trees())
            groups.append({
                "start": str(group.layout.start_label),
                "trie_size": group.layout.size,
                "queries": sorted(group.layout.terminal_of),
                "live_trees": len(trees),
                "counter_instances": group.counter_instances(),
                "trees": [tree.inspect() for tree in trees[:max_trees]],
                "trees_truncated": max(0, len(trees) - max_trees),
            })
        return {
            "kind": "prefix_shared",
            "events_processed": self.events_processed,
            "now": self._now,
            "current_objects": self.current_counters(),
            "peak_counters": self.peak_counters,
            "groups": groups,
        }
