"""Unshared multi-query execution — the NonShare comparator.

Runs one independent engine per query (A-Seq by default, or any
factory with the ``process``/``result`` surface). This is the paper's
"applying the single A-Seq on each query" baseline in Figs. 15/16.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.errors import PlanError
from repro.events.event import Event
from repro.core.executor import ASeqEngine
from repro.obs.funnel import FunnelRecorder, resolve_funnel
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.query.ast import Query


class UnsharedEngine:
    """One engine per query; no computation sharing."""

    def __init__(
        self,
        queries: Sequence[Query],
        engine_factory: Callable[[Query], Any] = ASeqEngine,
        registry: MetricsRegistry | None = None,
        funnel: FunnelRecorder | None = None,
    ):
        if not queries:
            raise PlanError("empty workload")
        self.obs_registry = resolve_registry(registry)
        self.funnel = resolve_funnel(funnel)
        if engine_factory is ASeqEngine:
            obs = self.obs_registry
            fun = self.funnel

            def engine_factory(q: Query) -> ASeqEngine:
                return ASeqEngine(q, registry=obs, funnel=fun)
        names = [q.name for q in queries]
        if None in names or len(set(names)) != len(names):
            raise PlanError("queries in a workload must be uniquely named")
        self._engines: dict[str, Any] = {
            q.name: engine_factory(q) for q in queries  # type: ignore[misc]
        }
        self._trigger_of = {
            q.name: frozenset(q.pattern.trigger_alternatives)
            for q in queries
        }
        self.events_processed = 0

    def process(self, event: Event) -> dict[str, Any] | None:
        """Feed the event to every engine; returns fresh completed counts."""
        self.events_processed += 1
        fresh: dict[str, Any] = {}
        for name, engine in self._engines.items():
            output = engine.process(event)
            if (
                output is not None
                and event.event_type in self._trigger_of[name]
            ):
                fresh[name] = output
        return fresh or None

    def result(self, query_name: str | None = None) -> Any:
        if query_name is not None:
            return self._engines[query_name].result()
        return {
            name: engine.result() for name, engine in self._engines.items()
        }

    def current_objects(self) -> int:
        return sum(
            engine.current_objects() for engine in self._engines.values()
        )

    def engine(self, query_name: str) -> Any:
        return self._engines[query_name]

    @property
    def query_names(self) -> list[str]:
        return list(self._engines)

    def explain(self) -> dict[str, Any]:
        """Structured plan per query (see :mod:`repro.obs.explain`)."""
        from repro.obs.explain import explain_engine
        return explain_engine(self)

    def inspect(self) -> dict[str, Any]:
        """JSON-serializable state summary (admin endpoints)."""
        queries = {}
        for name, engine in list(self._engines.items()):
            probe = getattr(engine, "inspect", None)
            queries[name] = probe() if probe is not None else {
                "kind": type(engine).__name__,
            }
        return {
            "kind": "unshared",
            "events_processed": self.events_processed,
            "current_objects": self.current_objects(),
            "queries": queries,
        }
