"""Multi-query sharing (paper Sec. 4).

* :mod:`repro.multi.pretree` / :mod:`repro.multi.prefix_sharing` —
  queries with common prefixes share one prefix-tree counter (Sec. 4.1,
  "for free").
* :mod:`repro.multi.chop_connect` — Chop-Connect: common sub-patterns
  at arbitrary positions are counted once and connected through
  per-CNET snapshot tables (Sec. 4.2, Lemma 7).
* :mod:`repro.multi.planner` — finds shareable prefixes/substrings in a
  workload and emits the chop plan.
* :mod:`repro.multi.ecube` — the ECube-style comparator [9]: shared
  sequence *construction*, independent counting.
"""

from repro.multi.chop import ChopPlan, chop
from repro.multi.chop_connect import ChopConnectEngine
from repro.multi.ecube import ECubeEngine
from repro.multi.planner import plan_workload
from repro.multi.prefix_sharing import PrefixSharedEngine
from repro.multi.pretree import PreTree, PreTreeLayout
from repro.multi.unshared import UnsharedEngine
from repro.multi.workload import WorkloadEngine

__all__ = [
    "ChopConnectEngine",
    "ChopPlan",
    "ECubeEngine",
    "PreTree",
    "PreTreeLayout",
    "PrefixSharedEngine",
    "UnsharedEngine",
    "WorkloadEngine",
    "chop",
    "plan_workload",
]
