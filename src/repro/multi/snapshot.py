"""SnapShot structures for Chop-Connect (paper Sec. 4.2, Fig. 10).

When a CNET instance (the START of a non-first segment) arrives, the
pipeline freezes the per-full-START counts of everything before that
segment into a :class:`Snapshot`: a row per full-pattern START instance
holding its expiration time and the number of predecessor composites
tagged to it. The tag is the paper's "PreCntr tag" — always the START
of the *full* sequence, so expiry checks stay cheap regardless of how
many segments were connected (Sec. 4.2, Multi-Connect).

Rows are stored sorted by expiration with right-to-left running sums,
so "total count of rows still alive at ``now``" — the value every TRIG
arrival needs — is one bisect instead of a scan. Rows expire in START
arrival order, which makes expiration order equal insertion order.
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Any, Iterable, Iterator

from repro.obs.registry import MetricsRegistry, resolve_registry


class Snapshot:
    """An immutable snapshot: rows of (tag, exp, count), exp-sorted."""

    __slots__ = ("tags", "exps", "counts", "_suffix_totals", "_cursor")

    def __init__(
        self,
        items: Iterable[tuple[Any, int, int]],
        presorted: bool = False,
    ):
        rows = list(items) if presorted else sorted(
            items, key=lambda row: row[1]
        )
        self.tags = [tag for tag, _, _ in rows]
        self.exps = [exp for _, exp, _ in rows]
        self.counts = [count for _, _, count in rows]
        # _suffix_totals[i] = sum of counts[i:]; one cursor advance (or
        # bisect for non-monotone observers) gives the live total.
        suffix = [0] * (len(rows) + 1)
        for index in range(len(rows) - 1, -1, -1):
            suffix[index] = suffix[index + 1] + self.counts[index]
        self._suffix_totals = suffix
        self._cursor = 0

    def __len__(self) -> int:
        return len(self.tags)

    def __bool__(self) -> bool:
        return bool(self.tags)

    def alive_total(self, now: int) -> int:
        """Sum of row counts whose full-pattern START is alive at ``now``.

        Observation times are normally monotone (stream time), so a
        cursor advances in amortized O(1); out-of-order observers fall
        back to a bisect without disturbing correctness.
        """
        exps = self.exps
        index = self._cursor
        if index < len(exps) and exps[index] <= now:
            while index < len(exps) and exps[index] <= now:
                index += 1
            self._cursor = index
        elif index and exps[index - 1] > now:
            index = bisect.bisect_right(exps, now, 0, index)
        return self._suffix_totals[index]

    def alive_items(self, now: int) -> Iterator[tuple[Any, int, int]]:
        """Iterate ``(tag, exp, count)`` of live rows, soonest-dying first."""
        index = bisect.bisect_right(self.exps, now)
        for position in range(index, len(self.tags)):
            yield (
                self.tags[position],
                self.exps[position],
                self.counts[position],
            )


EMPTY_SNAPSHOT = Snapshot(())


class SnapshotTable:
    """Snapshots attached to the CNET instances of one segment.

    Keyed by the CNET event; entries are purged once the CNET itself
    expires (every row inside expires no later, since the full-pattern
    START arrived earlier than the CNET).
    """

    __slots__ = (
        "by_event", "_expiry", "snapshots_created", "rows_written",
        "_obs_on", "_m_snapshots", "_m_rows", "_m_live",
    )

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.by_event: dict[Any, Snapshot] = {}
        self._expiry: deque[tuple[int, Any]] = deque()
        self.snapshots_created = 0
        self.rows_written = 0
        registry = resolve_registry(registry)
        self._obs_on = registry.enabled
        self._m_snapshots = registry.counter(
            "cc_snapshots_created_total",
            "SnapShot table entries frozen on CNET arrivals",
        )
        self._m_rows = registry.counter(
            "cc_snapshot_rows_written_total",
            "rows written into SnapShot table entries",
        )
        self._m_live = registry.gauge(
            "cc_snapshot_entries_live",
            "SnapShot table entries currently held (all tables)",
        )

    def add(self, cnet_event: Any, cnet_exp: int, snapshot: Snapshot) -> None:
        """Attach a snapshot to a CNET arrival."""
        self.by_event[cnet_event] = snapshot
        self._expiry.append((cnet_exp, cnet_event))
        self.snapshots_created += 1
        self.rows_written += len(snapshot)
        if self._obs_on:
            self._m_snapshots.inc()
            self._m_rows.inc(len(snapshot))
            self._m_live.inc()

    def get(self, cnet_event: Any) -> Snapshot | None:
        return self.by_event.get(cnet_event)

    def purge(self, now: int) -> None:
        """Drop snapshots whose CNET instance has expired."""
        expiry = self._expiry
        by_event = self.by_event
        purged = 0
        while expiry and expiry[0][0] <= now:
            _, event = expiry.popleft()
            by_event.pop(event, None)
            purged += 1
        if purged and self._obs_on:
            self._m_live.dec(purged)

    def __len__(self) -> int:
        return len(self.by_event)

    def live_rows(self) -> int:
        """Total rows currently held (memory accounting)."""
        return sum(len(snapshot) for snapshot in self.by_event.values())
