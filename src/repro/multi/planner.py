"""Multi-query planner: find shareable sub-patterns and emit chop plans.

The paper assumes "a sharing plan produced by a multi-query optimizer"
(Sec. 4.2) without specifying one; this module provides a practical
greedy planner: score every contiguous positive substring by the
counter updates it saves across the workload, pick the best, chop every
query around its first occurrence, and leave the rest as single-segment
plans. That is exactly the plan shape the paper's experiments use (one
common substring per workload).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import PlanError
from repro.multi.chop import ChopPlan
from repro.query.ast import Query


@dataclass(frozen=True)
class SharedSubstring:
    """A candidate substring with the queries that contain it."""

    types: tuple[str, ...]
    query_names: tuple[str, ...]

    @property
    def benefit(self) -> int:
        """Counter updates saved: (occurrences - 1) * substring length."""
        return (len(self.query_names) - 1) * len(self.types)


def find_common_substrings(
    queries: Sequence[Query], min_length: int = 2
) -> list[SharedSubstring]:
    """All positive substrings of length >= ``min_length`` shared by >= 2 queries."""
    containing: dict[tuple[str, ...], list[str]] = {}
    for query in queries:
        if query.name is None:
            raise PlanError("queries in a workload must be named")
        positives = query.pattern.positive_types
        seen: set[tuple[str, ...]] = set()
        for start in range(len(positives)):
            for end in range(start + min_length, len(positives) + 1):
                seen.add(positives[start:end])
        for substring in seen:
            containing.setdefault(substring, []).append(query.name)
    candidates = [
        SharedSubstring(types, tuple(sorted(names)))
        for types, names in containing.items()
        if len(names) >= 2
    ]
    # Ties on benefit go to the substring covering more queries (the
    # paper's Example 6 pick: (VKindle, BKindle) across all five).
    candidates.sort(
        key=lambda c: (c.benefit, len(c.query_names), len(c.types)),
        reverse=True,
    )
    return candidates


def chop_around(query: Query, substring: tuple[str, ...]) -> ChopPlan:
    """Chop ``query`` around the first occurrence of ``substring``.

    A query that does not contain the substring gets a single-segment
    plan (it still runs inside the shared engine, just unshared).
    """
    positives = query.pattern.positive_types
    position = _find(positives, substring)
    if position is None:
        return ChopPlan(query, ())
    cuts = []
    if position > 0:
        cuts.append(position)
    end = position + len(substring)
    if end < len(positives):
        cuts.append(end)
    return ChopPlan(query, tuple(cuts))


def plan_workload(
    queries: Sequence[Query], min_length: int = 2
) -> tuple[list[ChopPlan], SharedSubstring | None]:
    """Greedy plan: chop every query around the best common substring.

    Returns the per-query plans plus the chosen substring (None when
    nothing is shareable, in which case all plans are single-segment).

    >>> from repro.query import seq
    >>> qs = [
    ...     seq("A","B","C","D").count().within(ms=9).named("q1").build(),
    ...     seq("X","C","D").count().within(ms=9).named("q2").build(),
    ... ]
    >>> plans, best = plan_workload(qs)
    >>> best.types
    ('C', 'D')
    >>> [p.cut_points for p in plans]
    [(2,), (1,)]
    """
    candidates = find_common_substrings(queries, min_length)
    if not candidates:
        return [ChopPlan(q, ()) for q in queries], None
    best = candidates[0]
    return [chop_around(q, best.types) for q in queries], best


def _find(
    haystack: tuple[str, ...], needle: tuple[str, ...]
) -> int | None:
    for start in range(len(haystack) - len(needle) + 1):
        if haystack[start:start + len(needle)] == needle:
            return start
    return None
