"""ECube-style multi-query sharing: shared construction, unshared counting.

The paper's multi-query comparator [9] shares the *sequence
construction* of a common sub-pattern across queries, but still
materializes full sequence matches per query and counts them
independently. This module re-implements that sharing granularity:

* one stack-based matcher constructs the common substring's matches
  once for the whole workload;
* each query joins those sub-matches with its own prefix/suffix event
  stacks, materializing every full match (the polynomial step ECube
  cannot avoid);
* counting is per query over the materialized matches.

The 2-3x gain over per-query SASE comes from building the shared
substring once; the >=100x gap to A-Seq/CC remains because matches are
still materialized (paper Fig. 15).
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Any, Sequence

from repro.errors import PlanError
from repro.events.event import Event
from repro.baseline.matcher import StackMatcher
from repro.baseline.stacks import EventStack, StackEntry
from repro.baseline.twostep import TwoStepEngine, _MatchStore
from repro.multi.planner import find_common_substrings, _find
from repro.multi.pretree import _check_shareable, shared_window_ms
from repro.query.ast import Query, SeqPattern
from repro.query.builder import QueryBuilder


class _SubMatchStore:
    """Shared substring matches: (first_ts, last_ts), window-purged."""

    __slots__ = ("_entries", "_purged")

    def __init__(self) -> None:
        self._entries: deque[tuple[int, int]] = deque()
        self._purged = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def total_inserted(self) -> int:
        return self._purged + len(self._entries)

    def add(self, first_ts: int, last_ts: int) -> None:
        self._entries.append((first_ts, last_ts))

    def purge(self, now: int, window_ms: int) -> None:
        entries = self._entries
        horizon = now - window_ms
        while entries and entries[0][0] <= horizon:
            entries.popleft()
            self._purged += 1

    def below(self, rip: int) -> Sequence[tuple[int, int]]:
        """Live sub-matches inserted before global index ``rip``."""
        upper = rip - self._purged
        if upper <= 0:
            return ()
        entries = self._entries
        upper = min(upper, len(entries))
        return [entries[i] for i in range(upper)]


class _ECubeQuery:
    """Join state of one query around the shared substring."""

    __slots__ = (
        "name",
        "prefix_types",
        "suffix_types",
        "prefix_stacks",
        "suffix_stacks",
        "store",
        "trigger_types",
        "window_ms",
    )

    def __init__(
        self,
        query: Query,
        shared_position: int,
        shared_length: int,
        substore: _SubMatchStore,
    ):
        positives = query.pattern.positive_types
        assert query.window is not None
        self.name = query.name
        self.window_ms = query.window.size_ms
        self.prefix_types = positives[:shared_position]
        self.suffix_types = positives[shared_position + shared_length:]
        self.prefix_stacks = [EventStack(t) for t in self.prefix_types]
        self.suffix_stacks = [EventStack(t) for t in self.suffix_types]
        self.store = _MatchStore(self.window_ms)
        self.trigger_types = frozenset(positives[-1].split("|"))

    # ----- ingestion ----------------------------------------------------------

    def purge(self, now: int) -> None:
        for stack in self.prefix_stacks:
            stack.purge_expired(now, self.window_ms)
        for stack in self.suffix_stacks:
            stack.purge_expired(now, self.window_ms)

    def push(self, event: Event, substore: _SubMatchStore) -> None:
        """Insert the event into every matching prefix/suffix stack."""
        for position in range(len(self.prefix_stacks) - 1, -1, -1):
            if event.event_type not in self.prefix_types[position].split("|"):
                continue
            rip = (
                self.prefix_stacks[position - 1].total_inserted
                if position > 0
                else 0
            )
            self.prefix_stacks[position].push(event, rip)
        for position in range(len(self.suffix_stacks) - 1, -1, -1):
            if event.event_type not in self.suffix_types[position].split("|"):
                continue
            if position > 0:
                rip = self.suffix_stacks[position - 1].total_inserted
            else:
                rip = substore.total_inserted
            self.suffix_stacks[position].push(event, rip)

    # ----- match construction ----------------------------------------------------

    def construct_on_trigger(
        self,
        event: Event,
        substore: _SubMatchStore,
        new_subs: Sequence[tuple[int, int]],
    ) -> None:
        """Materialize the full matches the arriving event completes.

        Unlike the fixed-order NFA evaluation, the join around the
        shared sub-matches can bail out when any prefix stack is empty
        — one of the ways shared construction beats re-running SASE.
        """
        if any(len(stack) == 0 for stack in self.prefix_stacks):
            return
        if self.suffix_types:
            if event.event_type not in self.suffix_types[-1].split("|"):
                return
            entry = self.suffix_stacks[-1].newest()
            if entry is None or entry.event is not event:
                return
            for first_entry in self._suffix_heads(entry):
                for sub_first, sub_last in substore.below(first_entry.rip):
                    if sub_last >= first_entry.event.ts:
                        continue
                    self._join_prefixes(sub_first)
        elif not new_subs:
            return
        elif not self.prefix_stacks:
            # The whole pattern is the shared substring.
            for sub_first, _sub_last in new_subs:
                self.store.add(sub_first, 1.0)
        else:
            # Tail-shared: every new sub-match pairs with the prefix
            # combinations that completed before it started. Enumerate
            # the (few) prefix combinations and bisect the new subs,
            # instead of scanning every sub against every prefix.
            firsts = sorted(first for first, _last in new_subs)
            total_subs = len(firsts)
            add = self.store.add
            for start_ts, last_ts in self._prefix_combos():
                index = bisect.bisect_right(firsts, last_ts)
                for _ in range(index, total_subs):
                    add(start_ts, 1.0)

    def _suffix_heads(self, entry: StackEntry) -> list[StackEntry]:
        """First-position entries of every suffix combination ending here."""
        heads: list[StackEntry] = []

        def extend(position: int, current: StackEntry) -> None:
            if position == 0:
                heads.append(current)
                return
            previous = self.suffix_stacks[position - 1]
            for candidate in previous.live_below(current.rip):
                if candidate.event.ts < current.event.ts:
                    extend(position - 1, candidate)

        extend(len(self.suffix_stacks) - 1, entry)
        return heads

    def _prefix_combos(self) -> list[tuple[int, int]]:
        """All prefix combinations as ``(start_ts, last_ts)`` pairs."""
        combos: list[tuple[int, int]] = []
        last_position = len(self.prefix_stacks) - 1

        def extend(position, upper_ts, rip, last_ts):
            stack = self.prefix_stacks[position]
            candidates = (
                stack.entries() if rip is None else stack.live_below(rip)
            )
            for candidate in candidates:
                ts = candidate.event.ts
                if upper_ts is not None and ts >= upper_ts:
                    continue
                combo_last = ts if last_ts is None else last_ts
                if position == 0:
                    combos.append((ts, combo_last))
                else:
                    extend(position - 1, ts, candidate.rip, combo_last)

        extend(last_position, None, None, None)
        return combos

    def _join_prefixes(self, bound_ts: int) -> None:
        """Materialize one match per prefix combination ending before bound."""
        if not self.prefix_stacks:
            self.store.add(bound_ts, 1.0)
            return

        def extend(position: int, upper_ts: int, rip: int | None) -> None:
            stack = self.prefix_stacks[position]
            candidates = (
                stack.entries() if rip is None else stack.live_below(rip)
            )
            for candidate in candidates:
                if candidate.event.ts >= upper_ts:
                    continue
                if position == 0:
                    self.store.add(candidate.event.ts, 1.0)
                else:
                    extend(position - 1, candidate.event.ts, candidate.rip)

        extend(len(self.prefix_stacks) - 1, bound_ts, None)

    def result(self, now: int) -> int:
        self.store.purge(now)
        return self.store.count

    def live_objects(self) -> int:
        entries = sum(len(s) for s in self.prefix_stacks) + sum(
            len(s) for s in self.suffix_stacks
        )
        return 2 * entries + self.store.live_matches


class ECubeEngine:
    """Shared-construction execution of a COUNT multi-query workload.

    Parameters
    ----------
    queries:
        Named, positive-only COUNT queries sharing one WITHIN window.
    shared_types:
        The substring to share. Defaults to the planner's best pick.
        Queries that do not contain the substring run on a private
        stack-based engine (no sharing for them, as in ECube).
    """

    def __init__(
        self,
        queries: Sequence[Query],
        shared_types: tuple[str, ...] | None = None,
    ):
        if not queries:
            raise PlanError("empty workload")
        for query in queries:
            _check_shareable(query)
            if query.pattern.has_negation:
                raise PlanError(
                    "the ECube comparator handles positive-only patterns"
                )
        window_ms = shared_window_ms(queries)
        if window_ms is None:
            raise PlanError("ECube sharing needs a WITHIN window")
        if shared_types is None:
            candidates = find_common_substrings(queries)
            if not candidates:
                raise PlanError("no common substring to share")
            shared_types = candidates[0].types
        self.shared_types = shared_types
        self._window_ms = window_ms
        shared_query = (
            QueryBuilder(SeqPattern.of(*shared_types))
            .count()
            .within(ms=window_ms)
            .named("ecube:shared")
            .build()
        )
        self._shared_matcher = StackMatcher(shared_query)
        self._substore = _SubMatchStore()
        self._joins: dict[str, _ECubeQuery] = {}
        self._private: dict[str, TwoStepEngine] = {}
        #: Source queries by name (EXPLAIN reads these back).
        self._queries: dict[str, Query] = {
            q.name: q for q in queries
        }
        for query in queries:
            assert query.name is not None
            position = _find(query.pattern.positive_types, shared_types)
            if position is None:
                self._private[query.name] = TwoStepEngine(query)
            else:
                self._joins[query.name] = _ECubeQuery(
                    query, position, len(shared_types), self._substore
                )
        self._triggers: dict[str, list[str]] = {}
        for name, join in self._joins.items():
            for trigger in join.trigger_types:
                self._triggers.setdefault(trigger, []).append(name)
        for name, engine in self._private.items():
            for trigger in engine.query.pattern.trigger_alternatives:
                self._triggers.setdefault(trigger, []).append(name)
        self._now = 0
        self.events_processed = 0
        self.peak_objects = 0

    # ----- ingestion ----------------------------------------------------------

    def process(self, event: Event) -> dict[str, int] | None:
        """Ingest one event; returns fresh counts for completed queries."""
        self._now = max(self._now, event.ts)
        self.events_processed += 1
        self._substore.purge(event.ts, self._window_ms)
        new_subs = [
            (match[0].ts, match[-1].ts)
            for match in self._shared_matcher.process(event)
        ]
        for first_ts, last_ts in new_subs:
            self._substore.add(first_ts, last_ts)
        for join in self._joins.values():
            join.purge(event.ts)
            join.push(event, self._substore)
            join.construct_on_trigger(event, self._substore, new_subs)
        for engine in self._private.values():
            engine.process(event)
        current = self.current_objects()
        if current > self.peak_objects:
            self.peak_objects = current
        completed = self._triggers.get(event.event_type)
        if not completed:
            return None
        return {name: self._result_of(name) for name in completed}

    # ----- results ----------------------------------------------------------------

    def _result_of(self, name: str) -> int:
        join = self._joins.get(name)
        if join is not None:
            return join.result(self._now)
        return self._private[name].result()

    def result(self, query_name: str | None = None) -> Any:
        if query_name is not None:
            return self._result_of(query_name)
        names = list(self._joins) + list(self._private)
        return {name: self._result_of(name) for name in names}

    # ----- introspection ---------------------------------------------------------------

    @property
    def query_names(self) -> list[str]:
        return list(self._joins) + list(self._private)

    def shared_member_names(self) -> list[str]:
        """Queries joined around the shared substring (not private)."""
        return list(self._joins)

    def explain(self) -> dict[str, Any]:
        """Structured plan: shared substring and join membership (see
        :mod:`repro.obs.explain`)."""
        from repro.obs.explain import explain_engine
        return explain_engine(self)

    def current_objects(self) -> int:
        total = 2 * self._shared_matcher.live_entries + len(self._substore)
        total += sum(join.live_objects() for join in self._joins.values())
        total += sum(
            engine.current_objects() for engine in self._private.values()
        )
        return total
