"""One entry point for arbitrary multi-query workloads.

The shared engines cover the paper's experimental query class
(COUNT-only, predicate-free, ungrouped, one common window); real
workloads mix in negation, predicates, GROUP BY, value aggregates,
Kleene, and windows of different sizes. :class:`WorkloadEngine` routes
automatically:

* queries the sharing planner can chop around a common substring run
  together in one :class:`~repro.multi.chop_connect.ChopConnectEngine`
  (which subsumes prefix sharing: a shared prefix is a shared leading
  segment);
* everything else runs on its own
  :class:`~repro.core.executor.ASeqEngine`.

The result is the union of both, under the same ``process``/``result``
surface as every other engine in the library.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import PlanError
from repro.events.event import Event
from repro.core.executor import ASeqEngine
from repro.multi.chop import ChopPlan
from repro.multi.chop_connect import ChopConnectEngine
from repro.multi.planner import chop_around, find_common_substrings
from repro.obs.funnel import FunnelRecorder, resolve_funnel
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.query.ast import AggKind, Query


def _is_shareable(query: Query, window_ms: int | None) -> bool:
    """Whether a query fits the shared engines' supported class."""
    if query.aggregate.kind is not AggKind.COUNT:
        return False
    if query.predicates or query.group_by:
        return False
    if query.pattern.has_negation or query.pattern.has_kleene:
        return False
    if query.window is None or window_ms is None:
        return False
    return query.window.size_ms == window_ms


class WorkloadEngine:
    """Route a mixed workload across shared and per-query engines.

    >>> from repro.query import parse_workload
    >>> workload = parse_workload('''
    ...   q1: PATTERN SEQ(A, B, C)     AGG COUNT WITHIN 100 ms;
    ...   q2: PATTERN SEQ(X, B, C)     AGG COUNT WITHIN 100 ms;
    ...   q3: PATTERN SEQ(A, !N, D)   AGG COUNT WITHIN 100 ms;
    ... ''')
    >>> engine = WorkloadEngine(workload)
    >>> sorted(engine.shared_query_names)  # (B, C) shared by q1/q2
    ['q1', 'q2']
    >>> engine.unshared_query_names
    ['q3']
    """

    def __init__(
        self,
        queries: Sequence[Query],
        vectorized: bool = False,
        registry: MetricsRegistry | None = None,
        funnel: FunnelRecorder | None = None,
    ):
        if not queries:
            raise PlanError("empty workload")
        registry = resolve_registry(registry)
        self.obs_registry = registry
        funnel = resolve_funnel(funnel)
        self.funnel = funnel
        names = [q.name for q in queries]
        if None in names or len(set(names)) != len(names):
            raise PlanError("queries in a workload must be uniquely named")

        # The dominant window among shareable candidates anchors the
        # shared group; everything else runs unshared.
        window_votes: dict[int, int] = {}
        for query in queries:
            if query.window is not None:
                size = query.window.size_ms
                window_votes[size] = window_votes.get(size, 0) + 1
        anchor_window = max(window_votes, key=window_votes.get) if window_votes else None

        candidates = [
            q for q in queries if _is_shareable(q, anchor_window)
        ]
        shared_queries: list[Query] = []
        plans: list[ChopPlan] = []
        if len(candidates) >= 2:
            substrings = find_common_substrings(candidates)
            if substrings:
                best = substrings[0]
                covered = set(best.query_names)
                shared_queries = [
                    q for q in candidates if q.name in covered
                ]
                plans = [
                    chop_around(q, best.types) for q in shared_queries
                ]
        shared_names = {q.name for q in shared_queries}
        unshared_queries = [
            q for q in queries if q.name not in shared_names
        ]

        self._shared = (
            ChopConnectEngine(plans, registry=registry, funnel=funnel)
            if plans else None
        )
        self._unshared: dict[str, ASeqEngine] = {
            q.name: ASeqEngine(  # type: ignore[misc]
                q, vectorized=vectorized, registry=registry, funnel=funnel
            )
            for q in unshared_queries
        }
        self._unshared_triggers = {
            name: frozenset(
                engine.query.pattern.trigger_alternatives
            )
            for name, engine in self._unshared.items()
        }
        self.shared_query_names: list[str] = sorted(shared_names)  # type: ignore[arg-type]
        self.unshared_query_names: list[str] = [
            q.name for q in unshared_queries  # type: ignore[misc]
        ]
        self.events_processed = 0

    # ----- ingestion --------------------------------------------------------

    def process(self, event: Event) -> dict[str, Any] | None:
        """Ingest one event; returns fresh aggregates per completed query."""
        self.events_processed += 1
        fresh: dict[str, Any] = {}
        if self._shared is not None:
            shared_fresh = self._shared.process(event)
            if shared_fresh:
                fresh.update(shared_fresh)
        for name, engine in self._unshared.items():
            output = engine.process(event)
            if (
                output is not None
                and event.event_type in self._unshared_triggers[name]
            ):
                fresh[name] = output
        return fresh or None

    # ----- results -------------------------------------------------------------

    def result(self, query_name: str | None = None) -> Any:
        if query_name is not None:
            if query_name in self._unshared:
                return self._unshared[query_name].result()
            assert self._shared is not None
            return self._shared.result(query_name)
        results: dict[str, Any] = {}
        if self._shared is not None:
            results.update(self._shared.result())
        for name, engine in self._unshared.items():
            results[name] = engine.result()
        return results

    def current_objects(self) -> int:
        total = sum(
            engine.current_objects() for engine in self._unshared.values()
        )
        if self._shared is not None:
            total += self._shared.current_objects()
        return total

    @property
    def query_names(self) -> list[str]:
        return self.shared_query_names + self.unshared_query_names

    def shared_engine(self) -> ChopConnectEngine | None:
        """The Chop-Connect engine behind the shared group (if any)."""
        return self._shared

    def unshared_executor(self, query_name: str) -> ASeqEngine | None:
        return self._unshared.get(query_name)

    def inspect(self) -> dict[str, Any]:
        """JSON-serializable state summary (admin endpoints)."""
        unshared = {}
        for name, engine in list(self._unshared.items()):
            unshared[name] = engine.inspect()
        return {
            "kind": "workload",
            "events_processed": self.events_processed,
            "current_objects": self.current_objects(),
            "shared_query_names": list(self.shared_query_names),
            "unshared_query_names": list(self.unshared_query_names),
            "shared": (
                self._shared.inspect() if self._shared is not None else None
            ),
            "unshared": unshared,
        }

    def explain(self) -> dict[str, Any]:
        """Structured plan: shared-vs-unshared routing per query (see
        :mod:`repro.obs.explain`)."""
        from repro.obs.explain import explain_engine
        return explain_engine(self)

    def describe(self) -> str:
        """Human-readable routing decision."""
        lines = []
        if self._shared is not None:
            lines.append("shared (Chop-Connect):")
            lines.append("  " + self._shared.describe().replace("\n", "\n  "))
        if self._unshared:
            lines.append(
                "unshared (per-query A-Seq): "
                + ", ".join(self.unshared_query_names)
            )
        return "\n".join(lines)
