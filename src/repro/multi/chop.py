"""Chop plans: how a query's pattern is cut into connectable segments.

A :class:`ChopPlan` records the cut points chosen by the multi-query
planner (or by hand). ``cut_points`` are interior positive positions of
the pattern; ``(2, 4)`` on a length-6 pattern yields segments over
positions ``[0:2] [2:4] [4:6]``. A plan with no cut points runs the
query as plain single-query A-Seq inside the shared engine.

Chop-Connect covers the paper's experimental query class: positive-only
patterns, COUNT, one common WITHIN window (Sec. 6.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlanError
from repro.query.ast import AggKind, Query


@dataclass(frozen=True)
class ChopPlan:
    """A query plus the positions where its pattern is chopped."""

    query: Query
    cut_points: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        query = self.query
        if query.name is None:
            raise PlanError("chopped queries must be named")
        if query.aggregate.kind is not AggKind.COUNT:
            raise PlanError("Chop-Connect supports AGG COUNT queries")
        if query.pattern.has_negation:
            raise PlanError(
                "Chop-Connect supports positive-only patterns; run "
                "negation queries unshared or prefix-shared"
            )
        if query.pattern.has_kleene:
            raise PlanError(
                "Chop-Connect does not support Kleene patterns; run "
                "such queries unshared"
            )
        if query.predicates or query.group_by:
            raise PlanError(
                "Chop-Connect supports predicate-free, ungrouped queries"
            )
        if query.window is None:
            raise PlanError("Chop-Connect queries need a WITHIN window")
        length = query.pattern.length
        previous = 0
        for cut in self.cut_points:
            if not previous < cut < length:
                raise PlanError(
                    f"cut point {cut} invalid for pattern length {length}; "
                    f"cuts must be strictly increasing interior positions"
                )
            previous = cut

    @property
    def segments(self) -> tuple[tuple[str, ...], ...]:
        """Positive type names of each segment, in pattern order."""
        positives = self.query.pattern.positive_types
        bounds = (0, *self.cut_points, len(positives))
        return tuple(
            positives[bounds[i]:bounds[i + 1]]
            for i in range(len(bounds) - 1)
        )

    @property
    def window_ms(self) -> int:
        assert self.query.window is not None
        return self.query.window.size_ms

    def __str__(self) -> str:
        rendered = " | ".join(
            "(" + ", ".join(segment) + ")" for segment in self.segments
        )
        return f"{self.query.name}: {rendered}"


def chop(query: Query, *cut_points: int) -> ChopPlan:
    """Build a validated :class:`ChopPlan`.

    >>> from repro.query import seq
    >>> q = (seq("A", "B", "C", "D", "E").count()
    ...      .within(ms=100).named("q").build())
    >>> chop(q, 2).segments
    (('A', 'B'), ('C', 'D', 'E'))
    """
    return ChopPlan(query, tuple(cut_points))
