"""Chop-Connect (CC) — substring sharing at arbitrary positions.

Paper Sec. 4.2. Each distinct segment pattern of the workload is
counted once by a shared SEM engine, whatever queries it appears in and
wherever in their patterns. Per query, a pipeline connects its
segments:

* the START of segment ``j >= 2`` is a **CNET** event: its arrival
  freezes a :class:`~repro.multi.snapshot.SnapshotTable` entry — the
  count of all predecessor composites per full-pattern START (Lemma 7,
  generalized to multi-connect by always tagging rows with the full
  START);
* a TRIG arrival of the last segment multiplies each final-segment
  counter's count with the live rows of its snapshot and sums.

Per-event ordering matters and is fixed here: snapshots are taken
against the *pre-event* engine state (a predecessor composite must
complete strictly before the CNET arrival), engines then ingest the
event, and query outputs are read after ingestion.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import PlanError
from repro.events.event import Event
from repro.core.sem import SemEngine
from repro.multi.chop import ChopPlan
from repro.multi.pretree import shared_window_ms
from repro.multi.snapshot import Snapshot, SnapshotTable
from repro.obs.funnel import FunnelRecorder, resolve_funnel
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.query.ast import SeqPattern
from repro.query.builder import QueryBuilder


class _SegmentPool:
    """One shared SEM engine per distinct (segment pattern, window)."""

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        funnel: FunnelRecorder | None = None,
    ) -> None:
        self._engines: dict[tuple[tuple[str, ...], int], SemEngine] = {}
        self.segments_shared = 0
        self._registry = resolve_registry(registry)
        #: Segment engines record their extend/expire funnel stages
        #: under their ``segment:...`` names — shared work cannot be
        #: attributed to a single owning query.
        self._funnel = resolve_funnel(funnel)

    def engine_for(
        self, types: tuple[str, ...], window_ms: int
    ) -> SemEngine:
        key = (types, window_ms)
        engine = self._engines.get(key)
        if engine is None:
            query = (
                QueryBuilder(SeqPattern.of(*types))
                .count()
                .within(ms=window_ms)
                .named(f"segment:{'-'.join(types)}")
                .build()
            )
            engine = SemEngine(
                query, emit_on_trigger=False, registry=self._registry,
                funnel=self._funnel,
            )
            self._engines[key] = engine
        else:
            self.segments_shared += 1
        return engine

    def engines(self) -> Sequence[SemEngine]:
        return list(self._engines.values())


class _Pipeline:
    """Connect state for one chopped query."""

    __slots__ = ("plan", "engines", "tables", "cnet_types", "trigger_types")

    def __init__(
        self,
        plan: ChopPlan,
        pool: _SegmentPool,
        registry: MetricsRegistry | None = None,
    ):
        self.plan = plan
        window_ms = plan.window_ms
        segments = plan.segments
        self.engines = [
            pool.engine_for(segment, window_ms) for segment in segments
        ]
        #: tables[j] holds the snapshots of segment j's CNET instances
        #: (index 0 unused: the first segment has no predecessor).
        self.tables: list[SnapshotTable | None] = [None] + [
            SnapshotTable(registry) for _ in segments[1:]
        ]
        #: Concrete event types starting each non-first segment (a
        #: label like "A|B" expands to its alternatives).
        self.cnet_types = tuple(
            frozenset(segment[0].split("|")) for segment in segments[1:]
        )
        self.trigger_types = frozenset(segments[-1][-1].split("|"))

    # ----- snapshot creation (pre-event state) ------------------------------

    def take_snapshots(self, event: Event, now: int) -> None:
        """Freeze predecessor counts for every segment this CNET starts."""
        # Deeper segments first: their snapshot reads the predecessor
        # table, which must not yet contain this very arrival.
        for j in range(len(self.engines) - 1, 0, -1):
            if event.event_type not in self.cnet_types[j - 1]:
                continue
            self.take_snapshot_at(j, event, now)

    def take_snapshot_at(self, j: int, event: Event, now: int) -> None:
        """Freeze segment ``j``'s predecessor counts onto this CNET."""
        table = self.tables[j]
        assert table is not None
        table.purge(now)
        snapshot = self._predecessor_snapshot(j, now)
        table.add(event, now + self.plan.window_ms, snapshot)

    def _predecessor_snapshot(self, j: int, now: int) -> Snapshot:
        """Counts of segment 1..j-1 composites per full START, live at now."""
        engine = self.engines[j - 1]
        if j == 1:
            # Predecessor is the first segment: its counters ARE the
            # full-pattern STARTs (already in expiry order).
            return Snapshot(
                [
                    (counter.tag, counter.exp, counter.counts[-1])
                    for counter in engine.counters()
                    if counter.exp is not None
                    and counter.exp > now
                    and counter.counts[-1]
                ],
                presorted=True,
            )
        previous_table = self.tables[j - 1]
        assert previous_table is not None
        accumulated: dict[Any, tuple[int, int]] = {}
        for counter in engine.counters():
            if counter.exp is None or counter.exp <= now:
                continue
            segment_count = counter.full_count
            if not segment_count:
                continue
            attached = previous_table.get(counter.tag)
            if not attached:
                continue
            for tag, exp, count in attached.alive_items(now):
                contribution = count * segment_count
                existing = accumulated.get(tag)
                if existing is None:
                    accumulated[tag] = (exp, contribution)
                else:
                    accumulated[tag] = (exp, existing[1] + contribution)
        return Snapshot(
            (tag, exp, count)
            for tag, (exp, count) in accumulated.items()
        )

    # ----- output (post-event state) ------------------------------------------

    def result(self, now: int) -> int:
        """Current COUNT of the full pattern (Lemma 7's connect product)."""
        last = len(self.engines) - 1
        engine = self.engines[last]
        if last == 0:
            return sum(
                counter.counts[-1]
                for counter in engine.counters()
                if counter.exp is not None and counter.exp > now
            )
        table = self.tables[last]
        assert table is not None
        total = 0
        lookup = table.by_event.get
        for counter in engine.counters():
            exp = counter.exp
            if exp is None or exp <= now:
                continue
            segment_count = counter.counts[-1]
            if not segment_count:
                continue
            snapshot = lookup(counter.tag)
            if snapshot is not None and snapshot.tags:
                total += segment_count * snapshot.alive_total(now)
        return total

    def snapshot_rows(self) -> int:
        return sum(
            table.live_rows() for table in self.tables if table is not None
        )


class ChopConnectEngine:
    """Shared execution of a chopped multi-query workload.

    >>> from repro.query import seq
    >>> from repro.multi.chop import chop
    >>> q1 = seq("A","B","C","D").count().within(ms=100).named("q1").build()
    >>> q2 = seq("X","C","D").count().within(ms=100).named("q2").build()
    >>> engine = ChopConnectEngine([chop(q1, 2), chop(q2, 1)])  # share (C,D)
    >>> for i, name in enumerate("ABXCD"):
    ...     out = engine.process(Event(name, ts=i))
    >>> out == {"q1": 1, "q2": 1}
    True
    """

    def __init__(
        self,
        plans: Sequence[ChopPlan],
        registry: MetricsRegistry | None = None,
        funnel: FunnelRecorder | None = None,
    ):
        if not plans:
            raise PlanError("empty workload")
        names = [plan.query.name for plan in plans]
        if len(set(names)) != len(names):
            raise PlanError("duplicate query names in the workload")
        shared_window_ms([plan.query for plan in plans])
        registry = resolve_registry(registry)
        self.obs_registry = registry
        self._obs_on = registry.enabled
        self._m_events = registry.counter(
            "cc_events_total", "events offered to the Chop-Connect engine"
        )
        self._m_joins = registry.counter(
            "cc_connect_joins_total",
            "snapshot-times-segment connect products computed on TRIG",
        )
        funnel = resolve_funnel(funnel)
        self.funnel = funnel
        self._funnel_on = funnel.enabled
        self._pool = _SegmentPool(registry, funnel)
        self._pipelines = {
            plan.query.name: _Pipeline(plan, self._pool, registry)
            for plan in plans
        }
        #: Per-query funnel handles: CC queries are predicate-free, so
        #: every routed event also passes; extend/expire stages live in
        #: the shared ``segment:...`` series instead.
        self._fq_of = {
            name: funnel.for_query(name) for name in self._pipelines
        }
        self._funnel_routes: dict[str, list] = {}
        if funnel.enabled:
            for name, pipeline in self._pipelines.items():
                handle = self._fq_of[name]
                for segment in pipeline.plan.segments:
                    for label in segment:
                        for event_type in label.split("|"):
                            routed = self._funnel_routes.setdefault(
                                event_type, []
                            )
                            if handle not in routed:
                                routed.append(handle)
        #: trigger type -> query names to report on that arrival.
        self._triggers: dict[str, list[str]] = {}
        for name, pipeline in self._pipelines.items():
            assert name is not None
            for trigger in pipeline.trigger_types:
                self._triggers.setdefault(trigger, []).append(name)
        # Pre-routed dispatch: which pipelines snapshot and which segment
        # engines ingest each event type. Within one pipeline, deeper
        # segments snapshot first (their snapshot reads the predecessor
        # table, which must not yet contain this very arrival).
        self._snapshot_routes: dict[str, list[tuple[_Pipeline, int]]] = {}
        for pipeline in self._pipelines.values():
            for j in range(len(pipeline.engines) - 1, 0, -1):
                for cnet_type in pipeline.cnet_types[j - 1]:
                    self._snapshot_routes.setdefault(cnet_type, []).append(
                        (pipeline, j)
                    )
        self._engine_routes: dict[str, list[SemEngine]] = {}
        for engine in self._pool.engines():
            for event_type in engine.query.pattern.all_positive_event_types:
                routed = self._engine_routes.setdefault(event_type, [])
                if engine not in routed:
                    routed.append(engine)
        self._now = 0
        self.events_processed = 0

    # ----- ingestion --------------------------------------------------------

    def process(self, event: Event) -> dict[str, int] | None:
        """Ingest one event; returns fresh counts for completed queries."""
        self._now = max(self._now, event.ts)
        self.events_processed += 1
        event_type = event.event_type
        if self._obs_on:
            self._m_events.inc()
        if self._funnel_on:
            for handle in self._funnel_routes.get(event_type, ()):
                handle.routed.inc()
                handle.passed.inc()
                handle.note_ts(event.ts)
        for pipeline, j in self._snapshot_routes.get(event_type, ()):
            pipeline.take_snapshot_at(j, event, event.ts)
        for engine in self._engine_routes.get(event_type, ()):
            engine.process(event)
        completed = self._triggers.get(event_type)
        if not completed:
            return None
        if self._obs_on:
            self._m_joins.inc(len(completed))
        if self._funnel_on:
            for name in completed:
                self._fq_of[name].emitted.inc()
        return {
            name: self._pipelines[name].result(event.ts)
            for name in completed
        }

    # ----- results -------------------------------------------------------------

    def result(self, query_name: str | None = None) -> Any:
        """Counts for one query, or for the whole workload as a dict."""
        if query_name is not None:
            return self._pipelines[query_name].result(self._now)
        return {
            name: pipeline.result(self._now)
            for name, pipeline in self._pipelines.items()
        }

    # ----- introspection ----------------------------------------------------------

    def current_objects(self) -> int:
        """PreCntrs in the pool plus live snapshot rows."""
        counters = sum(
            engine.active_counters for engine in self._pool.engines()
        )
        rows = sum(p.snapshot_rows() for p in self._pipelines.values())
        return counters + rows

    @property
    def shared_segment_engines(self) -> int:
        return len(self._pool.engines())

    def describe(self) -> str:
        """Human-readable chop structure (examples, diagnostics)."""
        return "\n".join(
            str(pipeline.plan) for pipeline in self._pipelines.values()
        )

    def explain(self) -> dict[str, Any]:
        """Structured plan: segments per query and who shares them (see
        :mod:`repro.obs.explain`)."""
        from repro.obs.explain import explain_engine
        return explain_engine(self)

    def snapshot_rows_of(self, query_name: str) -> int:
        """Live SnapShot rows held for one query's pipeline."""
        pipeline = self._pipelines.get(query_name)
        return pipeline.snapshot_rows() if pipeline is not None else 0

    @property
    def query_names(self) -> list[str]:
        return list(self._pipelines)

    def inspect(self) -> dict[str, Any]:
        """JSON-serializable state summary (admin endpoints)."""
        segments = []
        for engine in self._pool.engines():
            segments.append({
                "pattern": engine.query.name,
                "window_ms": engine.query.window.size_ms
                if engine.query.window else None,
                "active_counters": engine.active_counters,
                "counter_updates": engine.counter_updates,
            })
        pipelines = {}
        for name, pipeline in list(self._pipelines.items()):
            pipelines[name] = {
                "segments": [
                    list(segment) for segment in pipeline.plan.segments
                ],
                "snapshot_rows": pipeline.snapshot_rows(),
                "snapshot_tables": sum(
                    1 for table in pipeline.tables if table is not None
                ),
            }
        return {
            "kind": "chop_connect",
            "events_processed": self.events_processed,
            "now": self._now,
            "shared_segment_engines": len(segments),
            "segments_shared": self._pool.segments_shared,
            "current_objects": self.current_objects(),
            "segments": segments,
            "pipelines": pipelines,
        }
