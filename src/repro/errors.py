"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class. Sub-classes distinguish the layer that
detected the problem (query compilation, stream ingestion, runtime).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class QueryError(ReproError):
    """A query is syntactically or semantically invalid."""


class ParseError(QueryError):
    """The query text could not be parsed.

    Carries the offending position so tooling can point at it.
    """

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class PredicateError(QueryError):
    """A predicate references an unknown attribute or event type."""


class StreamError(ReproError):
    """An event stream violated its contract (e.g. out-of-order events)."""


class OutOfOrderError(StreamError):
    """An event arrived with a timestamp earlier than its predecessor."""

    def __init__(self, previous_ts: int, current_ts: int):
        super().__init__(
            f"event timestamp {current_ts} is earlier than the previously "
            f"observed timestamp {previous_ts}; A-Seq assumes in-order "
            f"arrival (see paper Sec. 8)"
        )
        self.previous_ts = previous_ts
        self.current_ts = current_ts


class PlanError(ReproError):
    """A multi-query sharing plan is invalid (e.g. bad chop points)."""


class EngineError(ReproError):
    """The streaming engine was used incorrectly (e.g. duplicate query id)."""


class CheckpointError(EngineError):
    """A checkpoint could not be taken, parsed, or restored.

    Raised for unsupported runtimes, format-version mismatches,
    query-text mismatches, and structurally invalid state documents.
    Recovery code catches exactly this class to fall back to an older
    checkpoint (it still is an :class:`EngineError`, so pre-existing
    callers keep working).
    """


class JournalError(ReproError):
    """The event journal is corrupt beyond the tolerated torn tail."""


class OverloadError(EngineError):
    """A bounded queue (dead-letter queue, journal backlog) overflowed
    under the ``raise`` overload policy."""


class TransportError(EngineError):
    """A shard transport could not connect, frame, or deliver.

    Raised by the networked shard transport when a worker endpoint
    cannot be reached within its bounded retry budget, or when a framed
    message violates the wire protocol. Pipe-transport failures keep
    raising the OS-level errors they always did; this class only covers
    the transport layer itself."""


class FrameError(TransportError):
    """A framed channel observed a corrupt or impossible frame.

    Raised when a frame's CRC32 does not match its payload, or when the
    per-channel sequence numbers show a gap (frames were lost on the
    wire). The channel is unusable afterwards: the router treats the
    worker as failed and takes the bounded revive/reconnect path, whose
    checkpoint + journal-suffix re-seed (with count-skip dedup) restores
    exactly-once delivery."""


class TransportTimeout(TransportError):
    """A framed channel missed its read or write deadline.

    Deadlines are progress-based — any byte moved resets them — so a
    slow link keeps working while a silently dead peer (no FIN, no RST)
    is detected in bounded time instead of hanging a send or recv
    forever."""
