"""Plain controlled-rate type streams for the multi-query benchmarks.

The paper's Sec. 6.3 experiments "generate synthetic stock streams with
more event types" to build longer queries and larger workloads. This
generator draws event types from an arbitrary alphabet with explicit
weights, so a benchmark can dial in exactly how many instances of each
queried type fall into a window.
"""

from __future__ import annotations

import random
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.events.batch import BatchSchema, EventBatch
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.datagen.distributions import IntervalSampler


class SyntheticTypeGenerator:
    """Deterministic stream over an explicit type alphabet.

    Parameters
    ----------
    types:
        The alphabet. Each element is one event type.
    weights:
        Optional per-type relative frequencies (defaults to uniform).
    mean_gap_ms:
        Mean inter-arrival gap in milliseconds (timestamps are strictly
        increasing).
    attributes:
        Extra attribute generators are intentionally out of scope —
        multi-query sharing experiments are COUNT-only; every event
        carries just a serial ``n`` attribute for debugging.
    """

    def __init__(
        self,
        types: Sequence[str],
        weights: Mapping[str, float] | None = None,
        mean_gap_ms: float = 1,
        seed: int = 47,
    ):
        if not types:
            raise ValueError("need a non-empty type alphabet")
        self._types = list(types)
        if weights is None:
            self._weights = [1.0] * len(self._types)
        else:
            self._weights = [weights.get(t, 1.0) for t in self._types]
        self._mean_gap_ms = mean_gap_ms
        self._seed = seed

    @property
    def types(self) -> list[str]:
        return list(self._types)

    def events(self, count: int) -> Iterator[Event]:
        rng = random.Random(self._seed)
        gaps = IntervalSampler(self._mean_gap_ms, rng)
        ts = 0
        for n in range(count):
            ts += gaps.sample()
            event_type = rng.choices(self._types, self._weights)[0]
            yield Event(event_type, ts, {"n": n})

    def stream(self, count: int) -> EventStream:
        return EventStream(self.events(count))

    def take(self, count: int) -> list[Event]:
        return list(self.events(count))

    def batches(
        self, count: int, batch_size: int = 4096
    ) -> Iterator[EventBatch]:
        """The same stream as :meth:`events`, emitted as columnar
        :class:`EventBatch` chunks without building :class:`Event`
        objects. Draws the rng in the identical order, so
        ``batch.to_events()`` over the concatenation reproduces
        :meth:`take` exactly.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        schema = BatchSchema(self._types, ("n",))
        code_of = schema.code_of
        rng = random.Random(self._seed)
        gaps = IntervalSampler(self._mean_gap_ms, rng)
        choices = rng.choices
        types, weights = self._types, self._weights
        n = 0
        stamp = 0
        while n < count:
            size = min(batch_size, count - n)
            codes = np.empty(size, dtype=np.int32)
            ts = np.empty(size, dtype=np.int64)
            serial = np.arange(n, n + size, dtype=np.int64)
            for i in range(size):
                stamp += gaps.sample()
                codes[i] = code_of[choices(types, weights)[0]]
                ts[i] = stamp
            n += size
            yield EventBatch(schema, codes, ts, {"n": serial})


def alphabet(size: int, prefix: str = "T") -> list[str]:
    """``size`` synthetic type names: T0, T1, ... (workload builders)."""
    return [f"{prefix}{i}" for i in range(size)]
