"""Plain controlled-rate type streams for the multi-query benchmarks.

The paper's Sec. 6.3 experiments "generate synthetic stock streams with
more event types" to build longer queries and larger workloads. This
generator draws event types from an arbitrary alphabet with explicit
weights, so a benchmark can dial in exactly how many instances of each
queried type fall into a window.
"""

from __future__ import annotations

import random
from typing import Iterator, Mapping, Sequence

from repro.events.event import Event
from repro.events.stream import EventStream
from repro.datagen.distributions import IntervalSampler


class SyntheticTypeGenerator:
    """Deterministic stream over an explicit type alphabet.

    Parameters
    ----------
    types:
        The alphabet. Each element is one event type.
    weights:
        Optional per-type relative frequencies (defaults to uniform).
    mean_gap_ms:
        Mean inter-arrival gap in milliseconds (timestamps are strictly
        increasing).
    attributes:
        Extra attribute generators are intentionally out of scope —
        multi-query sharing experiments are COUNT-only; every event
        carries just a serial ``n`` attribute for debugging.
    """

    def __init__(
        self,
        types: Sequence[str],
        weights: Mapping[str, float] | None = None,
        mean_gap_ms: float = 1,
        seed: int = 47,
    ):
        if not types:
            raise ValueError("need a non-empty type alphabet")
        self._types = list(types)
        if weights is None:
            self._weights = [1.0] * len(self._types)
        else:
            self._weights = [weights.get(t, 1.0) for t in self._types]
        self._mean_gap_ms = mean_gap_ms
        self._seed = seed

    @property
    def types(self) -> list[str]:
        return list(self._types)

    def events(self, count: int) -> Iterator[Event]:
        rng = random.Random(self._seed)
        gaps = IntervalSampler(self._mean_gap_ms, rng)
        ts = 0
        for n in range(count):
            ts += gaps.sample()
            event_type = rng.choices(self._types, self._weights)[0]
            yield Event(event_type, ts, {"n": n})

    def stream(self, count: int) -> EventStream:
        return EventStream(self.events(count))

    def take(self, count: int) -> list[Event]:
        return list(self.events(count))


def alphabet(size: int, prefix: str = "T") -> list[str]:
    """``size`` synthetic type names: T0, T1, ... (workload builders)."""
    return [f"{prefix}{i}" for i in range(size)]
