"""Trace-file I/O for stock event streams.

The paper evaluates on ``eventstream3.txt`` — a stock trade trace of
120k events hosted at WPI, long offline. This module reads and writes
the plain-text format such traces use (one event per line:
``ticker,timestamp[,price[,volume]]``) so that anyone holding a copy of
the original file, or any trace shaped like it, can replay it through
the engines; :func:`write_trace` also lets the synthetic generators
persist reproducible streams to disk.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, Iterator, TextIO

from repro.errors import StreamError
from repro.events.batch import BatchSchema, EventBatch, batches_from_events
from repro.events.event import Event
from repro.events.stream import EventStream


def _parse_line(line: str, line_number: int) -> Event | None:
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    fields = [field.strip() for field in line.split(",")]
    if len(fields) < 2:
        raise StreamError(
            f"trace line {line_number}: expected 'ticker,timestamp[,"
            f"price[,volume]]', got {line!r}"
        )
    ticker, raw_ts = fields[0], fields[1]
    try:
        ts = int(raw_ts)
    except ValueError:
        raise StreamError(
            f"trace line {line_number}: timestamp {raw_ts!r} is not an "
            f"integer (milliseconds expected)"
        ) from None
    attrs: dict[str, object] = {"symbol": ticker}
    if len(fields) > 2 and fields[2]:
        try:
            attrs["price"] = float(fields[2])
        except ValueError:
            raise StreamError(
                f"trace line {line_number}: bad price {fields[2]!r}"
            ) from None
    if len(fields) > 3 and fields[3]:
        try:
            attrs["volume"] = int(fields[3])
        except ValueError:
            raise StreamError(
                f"trace line {line_number}: bad volume {fields[3]!r}"
            ) from None
    return Event(ticker, ts, attrs)


def iter_trace(source: str | Path | TextIO) -> Iterator[Event]:
    """Yield events from a trace file or file-like object.

    Blank lines and ``#`` comments are skipped. Events are yielded in
    file order; wrap with :class:`~repro.events.stream.EventStream` (the
    default in :func:`read_trace`) to enforce timestamp order, or with
    :func:`~repro.events.reorder.reordered` for mildly disordered files.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            yield from _iter_handle(handle)
    else:
        yield from _iter_handle(source)


def _iter_handle(handle: TextIO) -> Iterator[Event]:
    for line_number, line in enumerate(handle, start=1):
        event = _parse_line(line, line_number)
        if event is not None:
            yield event


def read_trace(
    source: str | Path | TextIO, enforce_order: bool = True
) -> EventStream:
    """Open a trace as an :class:`EventStream`."""
    return EventStream(iter_trace(source), enforce_order=enforce_order)


def read_trace_batches(
    source: str | Path | TextIO,
    batch_size: int = 1024,
    schema: BatchSchema | None = None,
) -> Iterator[EventBatch]:
    """Read a trace as columnar :class:`EventBatch` chunks.

    Feeds :meth:`StreamEngine.process_event_batch` (or ``run``) without
    per-event object dispatch; the engine's columnar lane enforces the
    same timestamp-order contract ``read_trace`` does. The schema grows
    across batches as new tickers appear, so type codes stay stable for
    the engine's per-schema plan caches.
    """
    return batches_from_events(
        iter_trace(source), batch_size=batch_size, schema=schema
    )


def write_trace(
    events: Iterable[Event], destination: str | Path | TextIO
) -> int:
    """Write events in the trace format; returns the number written.

    Only the conventional attributes (price, volume) are persisted —
    the format predates structured attributes.
    """
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as handle:
            return _write_handle(events, handle)
    return _write_handle(events, destination)


def _write_handle(events: Iterable[Event], handle: TextIO) -> int:
    written = 0
    for event in events:
        fields = [event.event_type, str(event.ts)]
        price = event.get("price")
        volume = event.get("volume")
        if price is not None or volume is not None:
            fields.append("" if price is None else f"{price}")
        if volume is not None:
            fields.append(str(volume))
        handle.write(",".join(fields) + "\n")
        written += 1
    return written


def trace_text(events: Iterable[Event]) -> str:
    """Render events as trace text (tests, small exports)."""
    buffer = io.StringIO()
    _write_handle(events, buffer)
    return buffer.getvalue()
