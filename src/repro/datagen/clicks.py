"""E-commerce clickstream generator (paper Application II, Example 6).

Simulates users browsing a storefront: each user intermittently views
and buys products (Kindle, Case, eBook, Light, iPad, KindleFire) and
sometimes clicks the recommendation link. Event types follow the
paper's naming: ``VKindle`` = view Kindle, ``BKindle`` = buy Kindle,
``REC`` = recommendation click, etc. All events carry ``userId`` for
equivalence predicates and GROUP BY.
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence

from repro.events.batch import EventBatch, batches_from_events
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.datagen.distributions import IntervalSampler

#: Default catalog: (view type, buy type) per product.
DEFAULT_PRODUCTS: tuple[tuple[str, str], ...] = (
    ("VKindle", "BKindle"),
    ("VCase", "BCase"),
    ("VeBook", "BeBook"),
    ("VLight", "BLight"),
    ("ViPad", "BiPad"),
    ("VKindleFire", "BKindleFire"),
)

#: The recommendation click type used by negation examples.
REC_TYPE = "REC"


class ClickStreamGenerator:
    """Deterministic user-click stream with funnel structure.

    Users follow a simple behavioural model: pick a product, view it,
    buy it with probability ``buy_rate``, occasionally click ``REC``.
    Sequential-funnel structure therefore arises naturally per user,
    giving the funnel queries non-trivial counts.
    """

    def __init__(
        self,
        users: int = 50,
        products: Sequence[tuple[str, str]] = DEFAULT_PRODUCTS,
        buy_rate: float = 0.45,
        rec_rate: float = 0.15,
        mean_gap_ms: float = 20,
        seed: int = 23,
    ):
        if users < 1:
            raise ValueError("need at least one user")
        self._users = users
        self._products = tuple(products)
        self._buy_rate = buy_rate
        self._rec_rate = rec_rate
        self._mean_gap_ms = mean_gap_ms
        self._seed = seed

    @property
    def event_types(self) -> tuple[str, ...]:
        types = [t for pair in self._products for t in pair]
        types.append(REC_TYPE)
        return tuple(types)

    def events(self, count: int) -> Iterator[Event]:
        """Generate ``count`` clicks with strictly increasing timestamps."""
        rng = random.Random(self._seed)
        gaps = IntervalSampler(self._mean_gap_ms, rng)
        #: Per-user pending actions (a tiny behavioural queue).
        pending: dict[int, list[str]] = {u: [] for u in range(self._users)}
        ts = 0
        emitted = 0
        while emitted < count:
            ts += gaps.sample()
            user = rng.randrange(self._users)
            queue = pending[user]
            if not queue:
                view, buy = self._products[
                    rng.randrange(len(self._products))
                ]
                queue.append(view)
                if rng.random() < self._rec_rate:
                    queue.append(REC_TYPE)
                if rng.random() < self._buy_rate:
                    queue.append(buy)
            click = queue.pop(0)
            yield Event(click, ts, {"userId": user, "click": click})
            emitted += 1

    def stream(self, count: int) -> EventStream:
        return EventStream(self.events(count))

    def take(self, count: int) -> list[Event]:
        return list(self.events(count))

    def batches(
        self, count: int, batch_size: int = 4096
    ) -> Iterator[EventBatch]:
        """The same stream as :meth:`events`, chunked into columnar
        :class:`~repro.events.batch.EventBatch` instances."""
        return batches_from_events(self.events(count), batch_size=batch_size)
