"""Synthetic stock-trade stream.

Substitutes the paper's real trade trace (``eventstream3.txt`` from
``davis.wpi.edu``, 120k events, long offline). Every event is one trade
of one ticker: the event *type* is the ticker symbol — exactly how the
paper's queries are written (``SEQ(DELL, IPIX, AMAT)``) — and the
attributes carry price and volume for value aggregates and predicates.

What the algorithms actually see is (type, ts, attrs); their costs are
driven by the number of instances of each queried type per window,
which this generator controls exactly through the symbol count, the
popularity skew and the mean inter-arrival gap. That is why the
substitution preserves the benchmark shapes (see DESIGN.md Sec. 3).
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence

from repro.events.batch import EventBatch, batches_from_events
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.datagen.distributions import IntervalSampler, RandomWalk, ZipfSampler

#: The tickers named by the paper's queries, padded with period-typical
#: symbols so streams can carry many event types.
DEFAULT_SYMBOLS: tuple[str, ...] = (
    "DELL", "IPIX", "AMAT", "QQQ", "INTC", "MSFT", "ORCL", "CSCO",
    "YHOO", "AMZN", "SUNW", "EBAY", "JNPR", "BRCM", "SEBL", "CIEN",
    "PMCS", "AMCC", "VRSN", "NTAP",
)


class StockTradeGenerator:
    """Deterministic ticker stream.

    Parameters
    ----------
    symbols:
        Ticker alphabet; each symbol is one event type.
    mean_gap_ms:
        Mean inter-arrival gap. With ``s`` symbols and a window of
        ``w`` ms, each symbol sees about ``w / (mean_gap_ms * s)``
        instances per window under uniform skew — the lever that
        controls baseline blow-up in the benchmarks.
    skew:
        Zipf exponent for symbol popularity (0 = uniform, like an
        index-tracking feed; ~1 = real-market-ish head-heaviness).
    seed:
        RNG seed; equal seeds give byte-identical streams.
    """

    def __init__(
        self,
        symbols: Sequence[str] = DEFAULT_SYMBOLS,
        mean_gap_ms: float = 1,
        skew: float = 0.0,
        seed: int = 17,
    ):
        self._symbols = tuple(symbols)
        self._mean_gap_ms = mean_gap_ms
        self._skew = skew
        self._seed = seed

    @property
    def symbols(self) -> tuple[str, ...]:
        return self._symbols

    def events(self, count: int) -> Iterator[Event]:
        """Generate ``count`` trades with strictly increasing timestamps."""
        rng = random.Random(self._seed)
        picker = ZipfSampler(self._symbols, self._skew, rng)
        gaps = IntervalSampler(self._mean_gap_ms, rng)
        walks = {
            symbol: RandomWalk(
                start=rng.uniform(5.0, 120.0), volatility=0.003, rng=rng
            )
            for symbol in self._symbols
        }
        ts = 0
        for _ in range(count):
            ts += gaps.sample()
            symbol = picker.sample()
            yield Event(
                symbol,
                ts,
                {
                    "symbol": symbol,
                    "price": walks[symbol].step(),
                    "volume": rng.randint(100, 5000),
                },
            )

    def stream(self, count: int) -> EventStream:
        return EventStream(self.events(count))

    def take(self, count: int) -> list[Event]:
        """Materialize ``count`` events (benchmarks reuse one list)."""
        return list(self.events(count))

    def batches(
        self, count: int, batch_size: int = 4096
    ) -> Iterator[EventBatch]:
        """The same stream as :meth:`events`, chunked into columnar
        :class:`~repro.events.batch.EventBatch` instances."""
        return batches_from_events(self.events(count), batch_size=batch_size)
