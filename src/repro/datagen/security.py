"""Network-security login stream (paper Application I).

Each actor (keyed by IP) types a username, types a password and clicks
submit. Normal users mostly get the password right; a configurable set
of brute-force attackers repeatedly gets it wrong, driving the paper's
motivating query::

    PATTERN SEQ(TypeUsername, TypePassword, ClickSubmit)
    WHERE TypePassword.value != TypeUsername.Password
    GROUP BY ip
    AGG COUNT WITHIN 10s

In this generator every event carries the actor's ``ip`` and a
``wrong`` flag precomputed on the TypePassword event (``value`` and
``expected`` attributes are also present so the WHERE clause can be
expressed literally).
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.events.batch import EventBatch, batches_from_events
from repro.events.event import Event
from repro.events.stream import EventStream
from repro.datagen.distributions import IntervalSampler

TYPE_USERNAME = "TypeUsername"
TYPE_PASSWORD = "TypePassword"
CLICK_SUBMIT = "ClickSubmit"


class LoginStreamGenerator:
    """Deterministic login-attempt stream with embedded attackers."""

    def __init__(
        self,
        normal_ips: int = 30,
        attacker_ips: int = 2,
        wrong_rate_normal: float = 0.05,
        mean_gap_ms: float = 50,
        attacker_burst: int = 8,
        seed: int = 31,
    ):
        self._normal_ips = [f"10.0.0.{i}" for i in range(normal_ips)]
        self._attacker_ips = [f"66.6.6.{i}" for i in range(attacker_ips)]
        self._wrong_rate_normal = wrong_rate_normal
        self._mean_gap_ms = mean_gap_ms
        self._attacker_burst = attacker_burst
        self._seed = seed

    @property
    def attacker_ips(self) -> list[str]:
        return list(self._attacker_ips)

    def events(self, count: int) -> Iterator[Event]:
        """Generate ``count`` events with strictly increasing timestamps."""
        rng = random.Random(self._seed)
        gaps = IntervalSampler(self._mean_gap_ms, rng)
        ts = 0
        emitted = 0
        #: Pending (ip, wrong) login sequences; each contributes 3 events.
        queue: list[tuple[str, str, bool]] = []
        while emitted < count:
            if not queue:
                attack = self._attacker_ips and rng.random() < 0.25
                if attack:
                    ip = rng.choice(self._attacker_ips)
                    for _ in range(self._attacker_burst):
                        self._enqueue_attempt(queue, ip, wrong=True)
                else:
                    ip = rng.choice(self._normal_ips)
                    wrong = rng.random() < self._wrong_rate_normal
                    self._enqueue_attempt(queue, ip, wrong)
            event_type, ip, wrong = queue.pop(0)
            ts += gaps.sample()
            attrs = {"ip": ip}
            if event_type == TYPE_PASSWORD:
                attrs["expected"] = "hunter2"
                attrs["value"] = "guess" if wrong else "hunter2"
                attrs["wrong"] = wrong
            yield Event(event_type, ts, attrs)
            emitted += 1

    @staticmethod
    def _enqueue_attempt(
        queue: list[tuple[str, str, bool]], ip: str, wrong: bool
    ) -> None:
        queue.append((TYPE_USERNAME, ip, wrong))
        queue.append((TYPE_PASSWORD, ip, wrong))
        queue.append((CLICK_SUBMIT, ip, wrong))

    def stream(self, count: int) -> EventStream:
        return EventStream(self.events(count))

    def take(self, count: int) -> list[Event]:
        return list(self.events(count))

    def batches(
        self, count: int, batch_size: int = 4096
    ) -> Iterator[EventBatch]:
        """The same stream as :meth:`events`, chunked into columnar
        :class:`~repro.events.batch.EventBatch` instances."""
        return batches_from_events(self.events(count), batch_size=batch_size)
