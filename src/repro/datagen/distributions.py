"""Small seeded samplers shared by the workload generators."""

from __future__ import annotations

import bisect
import itertools
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


class ZipfSampler:
    """Samples items with Zipf(s) popularity (rank-1 most popular).

    ``s = 0`` degenerates to uniform; larger ``s`` skews harder. Uses
    an explicit CDF + bisect, so sampling is O(log n) and needs no
    scipy at runtime.
    """

    def __init__(self, items: Sequence[T], s: float, rng: random.Random):
        if not items:
            raise ValueError("ZipfSampler needs at least one item")
        self._items = list(items)
        self._rng = rng
        weights = [1.0 / (rank ** s) for rank in range(1, len(items) + 1)]
        self._cdf = list(itertools.accumulate(weights))
        self._total = self._cdf[-1]

    def sample(self) -> T:
        point = self._rng.random() * self._total
        index = bisect.bisect_left(self._cdf, point)
        return self._items[min(index, len(self._items) - 1)]


class IntervalSampler:
    """Strictly positive integer inter-arrival gaps (milliseconds).

    Draws geometric-ish gaps with the requested mean but never returns
    zero, keeping stream timestamps strictly increasing (the tie-free
    ordering the engines assume).
    """

    def __init__(self, mean_gap_ms: float, rng: random.Random):
        if mean_gap_ms < 1:
            raise ValueError("mean gap must be >= 1 ms")
        self._mean = mean_gap_ms
        self._rng = rng

    def sample(self) -> int:
        if self._mean == 1:
            return 1
        # Exponential with the surplus mean, shifted by the mandatory 1ms.
        gap = 1 + int(self._rng.expovariate(1.0 / (self._mean - 1)))
        return gap


class RandomWalk:
    """A bounded multiplicative random walk (stock prices)."""

    def __init__(
        self,
        start: float,
        volatility: float,
        rng: random.Random,
        floor: float = 0.01,
    ):
        self.value = start
        self._volatility = volatility
        self._rng = rng
        self._floor = floor

    def step(self) -> float:
        drift = self._rng.gauss(0.0, self._volatility)
        self.value = max(self._floor, self.value * (1.0 + drift))
        return round(self.value, 2)
