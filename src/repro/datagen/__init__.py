"""Seeded workload generators.

The paper evaluates on a real stock-trade trace (120k events from a
WPI-hosted file that is no longer available) plus synthetic streams for
the multi-query experiments. These generators produce the equivalent
workloads deterministically:

* :class:`~repro.datagen.stock.StockTradeGenerator` — ticker events
  (DELL, IPIX, AMAT, QQQ, ...) with prices and volumes;
* :class:`~repro.datagen.clicks.ClickStreamGenerator` — e-commerce
  funnels (View/Buy Kindle, Case, ...) with user ids;
* :class:`~repro.datagen.security.LoginStreamGenerator` — login
  sequences per IP with brute-force attackers mixed in;
* :class:`~repro.datagen.synthetic.SyntheticTypeGenerator` — a plain
  alphabet stream with controlled per-type rates, used by the
  multi-query benchmarks.

All timestamps are strictly increasing integers (milliseconds), which
is the tie-free ordering the engines' strict SEQ semantics assume.
"""

from repro.datagen.clicks import ClickStreamGenerator
from repro.datagen.distributions import IntervalSampler, ZipfSampler
from repro.datagen.security import LoginStreamGenerator
from repro.datagen.stock import DEFAULT_SYMBOLS, StockTradeGenerator
from repro.datagen.synthetic import SyntheticTypeGenerator

__all__ = [
    "ClickStreamGenerator",
    "DEFAULT_SYMBOLS",
    "IntervalSampler",
    "LoginStreamGenerator",
    "StockTradeGenerator",
    "SyntheticTypeGenerator",
    "ZipfSampler",
]
