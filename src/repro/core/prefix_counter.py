"""The Prefix Counter (PreCntr) — the paper's only persistent state.

One :class:`PrefixCounter` holds, per prefix pattern length ``m + 1``,
the number of sequence matches constructed so far (``counts[m]``), plus
optional aggregate companions:

* ``wsums[m]`` — the sum of the target attribute over those matches
  (drives SUM/AVG, paper Sec. 5);
* ``extrema[m]`` — the max/min of the target attribute over those
  matches (drives MAX/MIN).

The same class implements both flavours the paper uses:

* **DPC counter** (``implicit_start=False``): one global counter; a
  START arrival increments slot 0 (Fig. 3, Line 4).
* **SEM counter** (``implicit_start=True``): one counter per START
  instance; slot 0 is pinned at 1 while the start is alive (Fig. 5 /
  Example 3 — "the count for prefix A will always be 1").

Updates implement Lemma 1 (``count(p_m) += count(p_{m-1})``), the
Recounting Rule of Lemma 6 (negation resets the guarded prefix), and
the weighted/extremal propagation of Sec. 5. Every operation is O(1).
"""

from __future__ import annotations

from repro.core.aggregates import PatternLayout


class PrefixCounter:
    """Prefix-pattern aggregate state for one counting context."""

    __slots__ = ("counts", "wsums", "extrema", "exp", "tag", "_layout")

    def __init__(
        self,
        layout: PatternLayout,
        implicit_start: bool = False,
        exp: int | None = None,
        tag: object = None,
    ):
        self._layout = layout
        self.counts = [0] * layout.length
        if implicit_start:
            self.counts[0] = 1
        self.wsums = [0.0] * layout.length if layout.tracks_values else None
        self.extrema = (
            [None] * layout.length if layout.tracks_extrema else None
        )
        #: Expiration timestamp of the START instance (SEM only).
        self.exp = exp
        #: Identity of the START instance (used by Chop-Connect snapshots).
        self.tag = tag
        if implicit_start and layout.value_slot == 0:
            # A value-aggregated START: slot 0's companion is the start's
            # own attribute value, recorded by the engine via seed_start().
            pass

    # ----- update rules ----------------------------------------------------

    def bump_start(self, value: float | None = None) -> None:
        """DPC START arrival: one more singleton-prefix match (slot 0)."""
        self.counts[0] += 1
        if self.wsums is not None and self._layout.value_slot == 0:
            assert value is not None
            self.wsums[0] += value
        if self.extrema is not None and self._layout.value_slot == 0:
            assert value is not None
            self._fold_extremum(0, value)

    def seed_start(self, value: float) -> None:
        """SEM: record the start's own attribute when it is the target."""
        if self.wsums is not None:
            self.wsums[0] = value
        if self.extrema is not None:
            self.extrema[0] = value

    def update(self, slot: int, value: float | None = None) -> None:
        """Lemma 1 at ``slot`` > 0: fold the previous prefix's state in.

        ``value`` is the event's target attribute when ``slot`` is the
        value slot of a SUM/AVG/MAX/MIN query; ignored otherwise.
        """
        counts = self.counts
        previous_count = counts[slot - 1]
        if self.wsums is not None:
            value_slot = self._layout.value_slot
            if slot == value_slot:
                assert value is not None
                self.wsums[slot] += previous_count * value
            elif slot > value_slot:
                self.wsums[slot] += self.wsums[slot - 1]
        if self.extrema is not None:
            value_slot = self._layout.value_slot
            if slot == value_slot:
                if previous_count:
                    assert value is not None
                    self._fold_extremum(slot, value)
            elif slot > value_slot:
                previous_extremum = self.extrema[slot - 1]
                if previous_extremum is not None:
                    self._fold_extremum(slot, previous_extremum)
        counts[slot] += previous_count

    def update_kleene(self, slot: int) -> None:
        """Kleene-plus fold at ``slot`` > 0: ``count' = 2*count + prev``.

        Every existing repetition-match either absorbs the new instance
        or not, and a fresh single-instance repetition extends each
        previous-prefix match. COUNT only (validated at query level).
        """
        counts = self.counts
        counts[slot] = 2 * counts[slot] + counts[slot - 1]

    def reset(self, slot: int) -> None:
        """Recounting Rule: a negative arrival wipes the guarded prefix."""
        self.counts[slot] = 0
        if self.wsums is not None:
            self.wsums[slot] = 0.0
        if self.extrema is not None:
            self.extrema[slot] = None

    def _fold_extremum(self, slot: int, value: float) -> None:
        extrema = self.extrema
        assert extrema is not None
        current = extrema[slot]
        if current is None:
            extrema[slot] = value
        elif self._layout.prefers_max:
            if value > current:
                extrema[slot] = value
        elif value < current:
            extrema[slot] = value

    # ----- reads --------------------------------------------------------------

    @property
    def full_count(self) -> int:
        """Matches of the complete pattern accumulated in this context."""
        return self.counts[-1]

    @property
    def full_wsum(self) -> float:
        assert self.wsums is not None
        return self.wsums[-1]

    @property
    def full_extremum(self) -> float | None:
        assert self.extrema is not None
        return self.extrema[-1]

    @property
    def start_alive(self) -> bool:
        """SEM: whether the implicit START can still extend (slot 0)."""
        return self.counts[0] > 0

    def snapshot_counts(self) -> tuple[int, ...]:
        """Immutable copy of the per-prefix counts (diagnostics, tests)."""
        return tuple(self.counts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"counts={self.counts}"]
        if self.wsums is not None:
            parts.append(f"wsums={self.wsums}")
        if self.extrema is not None:
            parts.append(f"extrema={self.extrema}")
        if self.exp is not None:
            parts.append(f"exp={self.exp}")
        return f"PrefixCounter({', '.join(parts)})"
