"""Columnar (structure-of-arrays) SEM runtime.

Semantically identical to :class:`~repro.core.sem.SemEngine`, but the
per-START prefix counters are stored column-wise in numpy arrays, so
the per-arrival "update one slot in every active counter" step of SEM
becomes a single vectorized addition over the live range. Counters
expire in creation order, so the live set is a ring slice ``[head,
tail)`` over the columns — expiry advances ``head``, a new START
appends at ``tail``.

The 2014 system was written in Java where the object-per-counter design
is fast enough; in Python the interpreter loop over counters dominates,
so this engine exists to keep the *measured* A-Seq curves shaped by the
algorithm rather than by interpreter overhead. The differential test
suite pins it to the reference engine.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import QueryError
from repro.events.event import Event
from repro.core.aggregates import PatternLayout
from repro.obs.funnel import FunnelRecorder, resolve_funnel
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.obs.tracing import Stage, TraceRecorder, resolve_tracer
from repro.query.ast import AggKind, Query

_INITIAL_CAPACITY = 256

#: Kleene updates double counts; guard well below int64's 2^63 - 1.
_KLEENE_GUARD = 2**61


class VectorizedSemEngine:
    """Windowed A-Seq with columnar per-START counters."""

    def __init__(
        self,
        query: Query,
        layout: PatternLayout | None = None,
        registry: MetricsRegistry | None = None,
        trace: TraceRecorder | None = None,
        funnel: FunnelRecorder | None = None,
    ):
        if query.window is None:
            raise QueryError(
                "VectorizedSemEngine needs a WITHIN clause; use DPCEngine "
                "for unwindowed queries"
            )
        self.query = query
        self.layout = layout or PatternLayout.of(query)
        self._window_ms = query.window.size_ms
        length = self.layout.length
        capacity = _INITIAL_CAPACITY
        self._capacity = capacity
        self._head = 0
        self._tail = 0
        self._counts = np.zeros((length, capacity), dtype=np.int64)
        self._exps = np.zeros(capacity, dtype=np.int64)
        self._wsums = (
            np.zeros((length, capacity), dtype=np.float64)
            if self.layout.tracks_values
            else None
        )
        if self.layout.tracks_extrema:
            self._extreme_identity = (
                -np.inf if self.layout.prefers_max else np.inf
            )
            self._extrema = np.full(
                (length, capacity), self._extreme_identity, dtype=np.float64
            )
        else:
            self._extrema = None
        self._now = 0
        self.events_processed = 0
        self.peak_counters = 0
        #: Per-counter slot updates, matching SemEngine's accounting
        #: (each arrival touches every live counter once, even though
        #: the touch is a single vectorized addition here).
        self.counter_updates = 0
        registry = resolve_registry(registry)
        self.obs_registry = registry
        self._obs_on = registry.enabled
        self._m_created = registry.counter(
            "sem_counters_created_total", "PrefixCounters opened for STARTs"
        )
        self._m_expired = registry.counter(
            "sem_counters_expired_total",
            "PrefixCounters purged after their window closed",
        )
        self._m_resets = registry.counter(
            "sem_recount_resets_total",
            "prefix slots wiped by the Recounting Rule (negation)",
        )
        self._m_active = registry.gauge(
            "sem_active_counters", "live PrefixCounters (paper memory metric)"
        )
        trace = resolve_tracer(trace)
        self._trace = trace
        self._trace_on = trace.enabled
        funnel = resolve_funnel(funnel)
        self._funnel_on = funnel.enabled
        self._fq = funnel.for_query(query.name or "q")

    # ----- ingestion ----------------------------------------------------------

    def process(self, event: Event) -> Any | None:
        """Ingest one (pre-filtered) event; returns the aggregate on TRIG."""
        layout = self.layout
        self._now = max(self._now, event.ts)
        self._expire(event.ts)
        self.events_processed += 1
        event_type = event.event_type

        reset = layout.reset_slot.get(event_type)
        if reset is not None:
            head, tail = self._head, self._tail
            self._counts[reset, head:tail] = 0
            if self._wsums is not None:
                self._wsums[reset, head:tail] = 0.0
            if self._extrema is not None:
                self._extrema[reset, head:tail] = self._extreme_identity
            if self._obs_on:
                self._m_resets.inc(tail - head)
            if self._funnel_on:
                self._fq.blocked.inc(tail - head)
            if self._trace_on:
                self._trace.record(
                    Stage.RECOUNT_RESET, event.ts, event_type,
                    f"reset slot {reset} in {tail - head} counters",
                )
            return None

        slots = layout.update_slots.get(event_type)
        if not slots:
            return None
        needs_value = layout.value_slot >= 0 and layout.value_slot in slots
        value = layout.value_of(event) if needs_value else None

        head, tail = self._head, self._tail
        self.counter_updates += tail - head
        if self._funnel_on:
            self._fq.extended.inc(tail - head)
        if self._trace_on and tail > head:
            self._trace.record(
                Stage.COUNTER_UPDATE, event.ts, event_type,
                f"slots={sorted(slots)} counters={tail - head}",
            )
        for slot in slots:  # descending
            if slot == 0:
                continue
            if slot in layout.kleene_slots:
                counts = self._counts
                # Kleene counts double per arrival and can exceed int64
                # within ~62 instances per window; fail loudly instead
                # of wrapping (the reference SemEngine uses Python's
                # arbitrary-precision integers and has no such limit).
                if tail > head and counts[slot, head:tail].max() > _KLEENE_GUARD:
                    raise OverflowError(
                        "Kleene count exceeds int64 in the columnar "
                        "runtime; use the reference engine "
                        "(vectorized=False) for this workload"
                    )
                counts[slot, head:tail] *= 2
                counts[slot, head:tail] += counts[slot - 1, head:tail]
            else:
                self._update_slot(slot, head, tail, value)
        if event_type in layout.start_types:
            self._append_start(event)

        if event_type in layout.trigger_types:
            return self.result()
        return None

    def process_batch(
        self, events: list[Event]
    ) -> list[tuple[Event, Any]]:
        """Ingest a pre-filtered micro-batch; returns ``(event, fresh)``
        pairs for the TRIG arrivals. Equivalent to per-event
        :meth:`process` on in-order streams — expiry inside the batch
        still happens at each event's own timestamp via the binary
        search in :meth:`_expire`, so window semantics are unchanged.
        """
        process = self.process
        return [
            (event, fresh)
            for event in events
            if (fresh := process(event)) is not None
        ]

    def process_columns(
        self,
        codes: list[int],
        ts: list[int],
        plan: Any,
        values: list[Any] | None = None,
    ) -> list[tuple[int, Any]]:
        """Ingest a pre-filtered columnar slice; returns ``(ts, fresh)``
        pairs for the TRIG arrivals.

        ``codes``/``ts`` (and ``values`` when the aggregate reads an
        attribute) are plain Python lists for the rows that survived
        routing and predicate masks; ``plan`` is the registration's
        :class:`~repro.core.columnar.ColumnarPlan` (slot/START/TRIG
        lookup by type code). Semantically identical to per-event
        :meth:`process` over the same slice — the differential suite
        pins it — but the hot loop runs on Python ints and lists,
        mirroring the numpy ring into list columns once per slice:
        per-event numpy slice arithmetic costs ~1µs per touch, far too
        slow for the 2M ev/s lane, while list operations over the small
        live set (tens of counters) stay in the low hundreds of ns.
        Expiry remains a binary search (``bisect`` == ``searchsorted``
        on the same sorted expiry column). Only flat, non-negated,
        non-Kleene layouts reach this kernel (plans gate the rest).
        """
        layout = self.layout
        n = len(codes)
        if not n:
            return []
        # Mirror the live ring slice into list columns.
        head, tail = self._head, self._tail
        counts: list[list[int]] = self._counts[:, head:tail].tolist()
        exps: list[int] = self._exps[head:tail].tolist()
        wsums = (
            self._wsums[:, head:tail].tolist()
            if self._wsums is not None
            else None
        )
        extrema = (
            self._extrema[:, head:tail].tolist()
            if self._extrema is not None
            else None
        )
        identity = (
            self._extreme_identity if self._extrema is not None else 0.0
        )
        prefers_max = layout.prefers_max
        value_slot = layout.value_slot
        kind = layout.agg_kind
        is_count = kind is AggKind.COUNT
        is_sum = kind is AggKind.SUM
        is_avg = kind is AggKind.AVG
        last = layout.length - 1
        length = layout.length
        window = self._window_ms
        slots_of = plan.slots_of_code
        start_of = plan.is_start
        trigger_of = plan.is_trigger
        from bisect import bisect_right

        lo = 0
        size = len(exps)
        now = self._now
        peak = self.peak_counters
        updates = 0
        expired = 0
        created = 0
        emitted: list[tuple[int, Any]] = []
        for i in range(n):
            t = ts[i]
            if t > now:
                now = t
            if lo < size and exps[lo] <= t:
                new_lo = bisect_right(exps, t, lo, size)
                expired += new_lo - lo
                lo = new_lo
            code = codes[i]
            live = size - lo
            if live:
                # One accounting tick per arrival per live counter,
                # matching SemEngine / per-event bookkeeping.
                updates += live
                for slot in slots_of[code]:  # descending
                    if slot == 0:
                        continue
                    previous = counts[slot - 1]
                    if wsums is not None:
                        if slot == value_slot:
                            v = values[i]
                            row = wsums[slot]
                            row[lo:] = [
                                w + p * v
                                for w, p in zip(row[lo:], previous[lo:])
                            ]
                        elif slot > value_slot:
                            row = wsums[slot]
                            prior = wsums[slot - 1]
                            row[lo:] = [
                                a + b
                                for a, b in zip(row[lo:], prior[lo:])
                            ]
                    if extrema is not None:
                        if slot == value_slot:
                            v = values[i]
                            row = extrema[slot]
                            if prefers_max:
                                row[lo:] = [
                                    v if p > 0 and v > e else e
                                    for e, p in zip(
                                        row[lo:], previous[lo:]
                                    )
                                ]
                            else:
                                row[lo:] = [
                                    v if p > 0 and v < e else e
                                    for e, p in zip(
                                        row[lo:], previous[lo:]
                                    )
                                ]
                        elif slot > value_slot:
                            row = extrema[slot]
                            prior = extrema[slot - 1]
                            if prefers_max:
                                row[lo:] = [
                                    a if a > b else b
                                    for a, b in zip(row[lo:], prior[lo:])
                                ]
                            else:
                                row[lo:] = [
                                    a if a < b else b
                                    for a, b in zip(row[lo:], prior[lo:])
                                ]
                    row = counts[slot]
                    row[lo:] = [
                        a + b for a, b in zip(row[lo:], previous[lo:])
                    ]
            if start_of[code]:
                counts[0].append(1)
                for slot in range(1, length):
                    counts[slot].append(0)
                exps.append(t + window)
                if wsums is not None:
                    wsums[0].append(
                        values[i] if value_slot == 0 else 0.0
                    )
                    for slot in range(1, length):
                        wsums[slot].append(0.0)
                if extrema is not None:
                    extrema[0].append(
                        values[i] if value_slot == 0 else identity
                    )
                    for slot in range(1, length):
                        extrema[slot].append(identity)
                size += 1
                created += 1
                if size - lo > peak:
                    peak = size - lo
            if trigger_of[code]:
                if is_count:
                    fresh: Any = sum(counts[last][lo:])
                elif is_sum:
                    fresh = float(sum(wsums[last][lo:]))
                elif is_avg:
                    total = sum(counts[last][lo:])
                    fresh = (
                        float(sum(wsums[last][lo:])) / total
                        if total
                        else None
                    )
                else:
                    column = extrema[last][lo:]
                    if not column:
                        fresh = None
                    else:
                        best = (
                            max(column) if prefers_max else min(column)
                        )
                        fresh = (
                            None if best == identity else float(best)
                        )
                if fresh is not None:
                    emitted.append((t, fresh))
        # Write the mirrored state back into the ring.
        live = size - lo
        if live > self._capacity:
            while self._capacity < live:
                self._capacity *= 2
            self._counts = np.zeros(
                (length, self._capacity), dtype=np.int64
            )
            self._exps = np.zeros(self._capacity, dtype=np.int64)
            if wsums is not None:
                self._wsums = np.zeros(
                    (length, self._capacity), dtype=np.float64
                )
            if extrema is not None:
                self._extrema = np.full(
                    (length, self._capacity),
                    self._extreme_identity,
                    dtype=np.float64,
                )
        if live:
            self._counts[:, :live] = [row[lo:] for row in counts]
            self._exps[:live] = exps[lo:]
            if wsums is not None:
                self._wsums[:, :live] = [row[lo:] for row in wsums]
            if extrema is not None:
                self._extrema[:, :live] = [row[lo:] for row in extrema]
        self._head = 0
        self._tail = live
        self._now = now
        self.events_processed += n
        self.counter_updates += updates
        self.peak_counters = peak
        if self._obs_on:
            if created:
                self._m_created.inc(created)
            if expired:
                self._m_expired.inc(expired)
            self._m_active.set(live)
        if self._funnel_on:
            if updates:
                self._fq.extended.inc(updates)
            if expired:
                self._fq.expired.inc(expired)
        return emitted

    def _update_slot(
        self, slot: int, head: int, tail: int, value: float | None
    ) -> None:
        layout = self.layout
        counts = self._counts
        previous = counts[slot - 1, head:tail]
        if self._wsums is not None:
            if slot == layout.value_slot:
                assert value is not None
                self._wsums[slot, head:tail] += previous * value
            elif slot > layout.value_slot:
                self._wsums[slot, head:tail] += self._wsums[
                    slot - 1, head:tail
                ]
        if self._extrema is not None:
            extrema = self._extrema
            if slot == layout.value_slot:
                assert value is not None
                fold = np.where(previous > 0, value, self._extreme_identity)
            elif slot > layout.value_slot:
                fold = extrema[slot - 1, head:tail]
            else:
                fold = None
            if fold is not None:
                if layout.prefers_max:
                    np.maximum(
                        extrema[slot, head:tail],
                        fold,
                        out=extrema[slot, head:tail],
                    )
                else:
                    np.minimum(
                        extrema[slot, head:tail],
                        fold,
                        out=extrema[slot, head:tail],
                    )
        counts[slot, head:tail] += previous

    def _append_start(self, event: Event) -> None:
        if self._tail == self._capacity:
            self._make_room()
        tail = self._tail
        self._counts[:, tail] = 0
        self._counts[0, tail] = 1
        self._exps[tail] = event.ts + self._window_ms
        if self._wsums is not None:
            self._wsums[:, tail] = 0.0
            if self.layout.value_slot == 0:
                self._wsums[0, tail] = self.layout.value_of(event)
        if self._extrema is not None:
            self._extrema[:, tail] = self._extreme_identity
            if self.layout.value_slot == 0:
                self._extrema[0, tail] = self.layout.value_of(event)
        self._tail = tail + 1
        live = self._tail - self._head
        if live > self.peak_counters:
            self.peak_counters = live
        if self._obs_on:
            self._m_created.inc()
            self._m_active.set(live)
        if self._trace_on:
            self._trace.record(
                Stage.COUNTER_CREATE, event.ts, event.event_type,
                f"exp={int(self._exps[tail])} active={live}",
            )

    def _make_room(self) -> None:
        """Compact the live range to the front, growing if still full."""
        head, tail = self._head, self._tail
        live = tail - head
        if live * 2 > self._capacity:
            self._capacity *= 2
        counts = np.zeros(
            (self.layout.length, self._capacity), dtype=np.int64
        )
        counts[:, :live] = self._counts[:, head:tail]
        self._counts = counts
        exps = np.zeros(self._capacity, dtype=np.int64)
        exps[:live] = self._exps[head:tail]
        self._exps = exps
        if self._wsums is not None:
            wsums = np.zeros(
                (self.layout.length, self._capacity), dtype=np.float64
            )
            wsums[:, :live] = self._wsums[:, head:tail]
            self._wsums = wsums
        if self._extrema is not None:
            extrema = np.full(
                (self.layout.length, self._capacity),
                self._extreme_identity,
                dtype=np.float64,
            )
            extrema[:, :live] = self._extrema[:, head:tail]
            self._extrema = extrema
        self._head = 0
        self._tail = live

    def _expire(self, now: int) -> None:
        head, tail = self._head, self._tail
        if head == tail or self._exps[head] > now:
            return
        # Expirations are appended in START order, so the live slice of
        # ``_exps`` is non-decreasing for in-order streams: one binary
        # search replaces the per-counter scan. (SemEngine tolerates
        # out-of-order STARTs with a linear popleft loop; here in-order
        # input is an invariant of the columnar ring.)
        head += int(
            self._exps[head:tail].searchsorted(now, side="right")
        )
        expired = head - self._head
        self._head = head
        if self._obs_on:
            self._m_expired.inc(expired)
            self._m_active.set(tail - head)
        if self._funnel_on:
            self._fq.expired.inc(expired)
        if self._trace_on:
            self._trace.record(
                Stage.EXPIRE, now, "",
                f"{expired} counters expired, {tail - head} remain",
            )

    # ----- results ----------------------------------------------------------------

    def result(self) -> Any:
        """Current aggregate over the live counter columns."""
        self._expire(self._now)
        head, tail = self._head, self._tail
        kind = self.layout.agg_kind
        last = self.layout.length - 1
        if kind is AggKind.COUNT:
            return int(self._counts[last, head:tail].sum())
        if kind is AggKind.SUM:
            assert self._wsums is not None
            return float(self._wsums[last, head:tail].sum())
        if kind is AggKind.AVG:
            assert self._wsums is not None
            count = int(self._counts[last, head:tail].sum())
            if not count:
                return None
            return float(self._wsums[last, head:tail].sum()) / count
        assert self._extrema is not None
        if head == tail:
            return None
        column = self._extrema[last, head:tail]
        best = column.max() if self.layout.prefers_max else column.min()
        if best == self._extreme_identity:
            return None
        return float(best)

    def count_and_wsum(self) -> tuple[int, float]:
        """COUNT and weighted-sum totals (AVG composition across partitions)."""
        self._expire(self._now)
        head, tail = self._head, self._tail
        last = self.layout.length - 1
        count = int(self._counts[last, head:tail].sum())
        wsum = (
            float(self._wsums[last, head:tail].sum())
            if self._wsums is not None
            else 0.0
        )
        return count, wsum

    # ----- introspection -------------------------------------------------------------

    @property
    def active_counters(self) -> int:
        return self._tail - self._head

    def current_objects(self) -> int:
        return self.active_counters

    def advance_time(self, now: int) -> None:
        """Move the engine clock without an event (expiry on idle streams)."""
        self._now = max(self._now, now)
        self._expire(self._now)

    def inspect(self) -> dict[str, Any]:
        """JSON-serializable state summary (admin endpoints)."""
        return {
            "kind": "vectorized_sem",
            "query": self.query.name,
            "window_ms": self._window_ms,
            "now": self._now,
            "events_processed": self.events_processed,
            "counter_updates": self.counter_updates,
            "active_counters": self.active_counters,
            "peak_counters": self.peak_counters,
            "capacity": self._capacity,
            "agg": self.layout.agg_kind.name.lower(),
        }
