"""Compiled pattern layout shared by every A-Seq runtime.

A :class:`PatternLayout` pre-resolves everything the per-event hot path
needs from the query AST:

* which prefix-counter slots an event type updates (the paper's
  START/UPD/TRIG classification, generalized to repeated types);
* which slot a negated type resets (the Recounting Rule target);
* where the value aggregate reads its attribute and how it folds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PredicateError
from repro.events.event import Event
from repro.query.ast import AggKind, Query


@dataclass(frozen=True)
class PatternLayout:
    """Everything the counting runtimes need, precomputed from a query.

    Slot convention: slot ``m`` (0-indexed) holds the aggregate state of
    the prefix pattern of length ``m + 1``. Slot 0 is the START slot;
    slot ``length - 1`` is the full pattern.
    """

    positives: tuple[str, ...]
    length: int
    #: concrete event type -> slots it updates, *descending* so an
    #: event never chains with itself when a type fills several
    #: positions (choice positions register every alternative).
    update_slots: dict[str, tuple[int, ...]]
    #: negated type name -> slot index whose count the Recounting Rule
    #: resets (the Longest Positive Prefix Sequence before the negation).
    reset_slot: dict[str, int]
    #: Concrete event types opening / completing a match.
    start_types: frozenset[str]
    trigger_types: frozenset[str]
    #: Positions with Kleene-plus semantics (count' = 2*count + prev).
    kleene_slots: frozenset[int]
    agg_kind: AggKind
    #: Slot of the value aggregate's target type (-1 for COUNT).
    value_slot: int
    value_attribute: str | None

    @classmethod
    def of(cls, query: Query) -> "PatternLayout":
        pattern = query.pattern
        positives = pattern.positive_types
        alternatives = pattern.alternatives
        update_slots: dict[str, tuple[int, ...]] = {}
        for slot, names in enumerate(alternatives):
            for name in names:
                existing = update_slots.get(name, ())
                update_slots[name] = (slot, *existing)  # descending
        reset_slot: dict[str, int] = {}
        for guarded, names in pattern.negations.items():
            for name in names:
                # Reset the prefix of length ``guarded`` -> slot guarded-1.
                reset_slot[name] = guarded - 1
        aggregate = query.aggregate
        if aggregate.kind is AggKind.COUNT:
            value_slot = -1
            value_attribute = None
        else:
            assert aggregate.event_type is not None
            value_slot = pattern.position_of_event_type(
                aggregate.event_type
            )
            value_attribute = aggregate.attribute
        return cls(
            positives=positives,
            length=len(positives),
            update_slots=update_slots,
            reset_slot=reset_slot,
            start_types=frozenset(alternatives[0]),
            trigger_types=frozenset(alternatives[-1]),
            kleene_slots=pattern.kleene_positions,
            agg_kind=aggregate.kind,
            value_slot=value_slot,
            value_attribute=value_attribute,
        )

    @property
    def tracks_values(self) -> bool:
        """True for SUM/AVG (weighted sums propagate through slots)."""
        return self.agg_kind in (AggKind.SUM, AggKind.AVG)

    @property
    def tracks_extrema(self) -> bool:
        return self.agg_kind in (AggKind.MAX, AggKind.MIN)

    @property
    def prefers_max(self) -> bool:
        return self.agg_kind is AggKind.MAX

    def value_of(self, event: Event) -> float:
        """Read the aggregate attribute off an event of the target type."""
        assert self.value_attribute is not None
        value = event.get(self.value_attribute, _MISSING)
        if value is _MISSING:
            raise PredicateError(
                f"event of type {event.event_type!r} lacks aggregate "
                f"attribute {self.value_attribute!r}"
            )
        return value

    def categories_of(self, event_type: str) -> str:
        """Human-readable START/UPD/TRIG/NEG classification (diagnostics)."""
        labels = []
        if event_type in self.start_types:
            labels.append("START")
        slots = self.update_slots.get(event_type, ())
        if any(slot not in (0, self.length - 1) for slot in slots):
            labels.append("UPD")
        if event_type in self.trigger_types:
            labels.append("TRIG")
        if event_type in self.reset_slot:
            labels.append("NEG")
        return "/".join(labels) if labels else "IGNORED"


class _Missing:
    __slots__ = ()


_MISSING = _Missing()
