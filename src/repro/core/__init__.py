"""A-Seq: match-free online aggregation of sequence patterns.

The paper's contribution. :class:`~repro.core.executor.ASeqEngine` is
the public entry point; it compiles a query onto the right runtime:

* :class:`~repro.core.dpc.DPCEngine` — Dynamic Prefix Counting for
  unwindowed queries (paper Sec. 3.1, Fig. 3);
* :class:`~repro.core.sem.SemEngine` — Start Event Marking for sliding
  windows (Sec. 3.2, Fig. 5);
* :class:`~repro.core.hpc.HPCEngine` — Hashed Prefix Counters for
  equivalence predicates and GROUP BY (Sec. 3.4, Fig. 8);
* :class:`~repro.core.vectorized.VectorizedSemEngine` — a columnar
  (structure-of-arrays) drop-in for SEM, an optimization the original
  Java system did not need but a Python one does.

Negation (Sec. 3.3) and all aggregate kinds (Sec. 5) are supported by
every runtime.
"""

from repro.core.aggregates import PatternLayout
from repro.core.checkpoint import checkpoint, restore
from repro.core.dpc import DPCEngine
from repro.core.executor import ASeqEngine
from repro.core.hpc import HPCEngine
from repro.core.prefix_counter import PrefixCounter
from repro.core.sem import SemEngine
from repro.core.vectorized import VectorizedSemEngine

__all__ = [
    "ASeqEngine",
    "DPCEngine",
    "HPCEngine",
    "PatternLayout",
    "PrefixCounter",
    "SemEngine",
    "VectorizedSemEngine",
    "checkpoint",
    "restore",
]
