"""Basic A-Seq: Dynamic Prefix Counting (paper Sec. 3.1, Fig. 3).

One global :class:`~repro.core.prefix_counter.PrefixCounter` per query.
Each arrival touches exactly one slot (plus one reset slot per negated
type), events are discarded immediately, and nothing else is stored —
the optimal CPU/memory behaviour of Lemma 2.

DPC does not support sliding windows; queries with a WITHIN clause are
compiled onto :class:`~repro.core.sem.SemEngine` instead (the executor
takes care of the choice, but constructing a :class:`DPCEngine`
directly for a windowed query raises).
"""

from __future__ import annotations

from typing import Any

from repro.errors import QueryError
from repro.events.event import Event
from repro.core.aggregates import PatternLayout
from repro.core.prefix_counter import PrefixCounter
from repro.obs.funnel import FunnelRecorder, resolve_funnel
from repro.query.ast import AggKind, Query


class DPCEngine:
    """Unwindowed A-Seq evaluation of one query over one partition."""

    def __init__(
        self,
        query: Query,
        layout: PatternLayout | None = None,
        funnel: FunnelRecorder | None = None,
    ):
        if query.window is not None:
            raise QueryError(
                "DPC cannot expire state; use SemEngine for WITHIN queries"
            )
        self.query = query
        self.layout = layout or PatternLayout.of(query)
        self._counter = PrefixCounter(self.layout, implicit_start=False)
        self.events_processed = 0
        self.counter_updates = 0
        funnel = resolve_funnel(funnel)
        self._funnel_on = funnel.enabled
        self._fq = funnel.for_query(query.name or "q")

    def process(self, event: Event) -> Any | None:
        """Ingest one (pre-filtered) event; returns the aggregate on TRIG."""
        layout = self.layout
        event_type = event.event_type
        counter = self._counter
        self.events_processed += 1
        reset = layout.reset_slot.get(event_type)
        if reset is not None:
            counter.reset(reset)
            if self._funnel_on:
                self._fq.blocked.inc()
            return None
        slots = layout.update_slots.get(event_type)
        if not slots:
            return None
        needs_value = (
            layout.value_slot >= 0 and layout.value_slot in slots
        )
        value = layout.value_of(event) if needs_value else None
        self.counter_updates += len(slots)
        if self._funnel_on:
            self._fq.extended.inc(len(slots))
        for slot in slots:  # descending: no self-chaining
            if slot == 0:
                counter.bump_start(
                    value if layout.value_slot == 0 else None
                )
            elif slot in layout.kleene_slots:
                counter.update_kleene(slot)
            else:
                counter.update(
                    slot, value if slot == layout.value_slot else None
                )
        if event_type in layout.trigger_types:
            return self.result()
        return None

    def result(self) -> Any:
        """Current aggregate of the full pattern."""
        kind = self.layout.agg_kind
        counter = self._counter
        if kind is AggKind.COUNT:
            return counter.full_count
        if kind is AggKind.SUM:
            return counter.full_wsum if counter.full_count else 0
        if kind is AggKind.AVG:
            if not counter.full_count:
                return None
            return counter.full_wsum / counter.full_count
        return counter.full_extremum

    def count_and_wsum(self) -> tuple[int, float]:
        """COUNT and weighted-sum totals (AVG composition across partitions)."""
        return self._counter.full_count, self._counter.full_wsum

    def advance_time(self, now: int) -> None:
        """No-op: DPC keeps no time-dependent state."""

    # ----- introspection ---------------------------------------------------

    @property
    def counter(self) -> PrefixCounter:
        """The single global prefix counter (tests, examples)."""
        return self._counter

    def current_objects(self) -> int:
        """Paper-style memory accounting: one PreCntr, always."""
        return 1

    def inspect(self) -> dict[str, Any]:
        """JSON-serializable state summary (admin endpoints)."""
        counter = self._counter
        state: dict[str, Any] = {
            "kind": "dpc",
            "query": self.query.name,
            "events_processed": self.events_processed,
            "counter_updates": self.counter_updates,
            "active_counters": 1,
            "agg": self.layout.agg_kind.name.lower(),
            "counts": list(counter.counts),
        }
        if counter.wsums is not None:
            state["wsums"] = list(counter.wsums)
        if counter.extrema is not None:
            state["extrema"] = list(counter.extrema)
        return state
