"""SEM — Start Event Marking (paper Sec. 3.2, Fig. 5).

Sliding-window A-Seq: every START instance gets its own
:class:`~repro.core.prefix_counter.PrefixCounter`, stamped with the
instance's expiration time ``arr + win``. Because streams deliver
events in order, counters expire in creation order, so the active set
is a deque purged from the front in O(1) per expiration — no sequence
match is ever revisited (Lemma 3).

Per arrival the engine updates one slot in each active counter (cost
``O(k)`` in the number of active starts, the paper's linear bound), and
a TRIG arrival reports the sum over active counters (Lemma 4).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterator

from repro.errors import QueryError
from repro.events.event import Event
from repro.core.aggregates import PatternLayout
from repro.core.prefix_counter import PrefixCounter
from repro.obs.funnel import FunnelRecorder, resolve_funnel
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.obs.tracing import Stage, TraceRecorder, resolve_tracer
from repro.query.ast import AggKind, Query


class SemEngine:
    """Windowed A-Seq evaluation of one query over one partition."""

    def __init__(
        self,
        query: Query,
        layout: PatternLayout | None = None,
        emit_on_trigger: bool = True,
        registry: MetricsRegistry | None = None,
        trace: TraceRecorder | None = None,
        funnel: FunnelRecorder | None = None,
    ):
        if query.window is None:
            raise QueryError(
                "SemEngine needs a WITHIN clause; use DPCEngine otherwise"
            )
        self.query = query
        self.layout = layout or PatternLayout.of(query)
        self._window_ms = query.window.size_ms
        self._counters: deque[PrefixCounter] = deque()
        self._now = 0
        # Chop-Connect segment engines never use the per-trigger result;
        # turning it off keeps shared segments pure counting.
        self._emit_on_trigger = emit_on_trigger
        self.events_processed = 0
        self.peak_counters = 0
        self.counter_updates = 0
        registry = resolve_registry(registry)
        self.obs_registry = registry
        self._obs_on = registry.enabled
        self._m_created = registry.counter(
            "sem_counters_created_total", "PrefixCounters opened for STARTs"
        )
        self._m_expired = registry.counter(
            "sem_counters_expired_total",
            "PrefixCounters purged after their window closed",
        )
        self._m_resets = registry.counter(
            "sem_recount_resets_total",
            "prefix slots wiped by the Recounting Rule (negation)",
        )
        self._m_active = registry.gauge(
            "sem_active_counters", "live PrefixCounters (paper memory metric)"
        )
        trace = resolve_tracer(trace)
        self._trace = trace
        self._trace_on = trace.enabled
        funnel = resolve_funnel(funnel)
        self._funnel_on = funnel.enabled
        self._fq = funnel.for_query(query.name or "q")

    # ----- ingestion ------------------------------------------------------

    def process(self, event: Event) -> Any | None:
        """Ingest one (pre-filtered) event; returns the aggregate on TRIG."""
        layout = self.layout
        self._now = max(self._now, event.ts)
        self._expire(event.ts)
        self.events_processed += 1
        event_type = event.event_type

        reset = layout.reset_slot.get(event_type)
        if reset is not None:
            for counter in self._counters:
                counter.reset(reset)
            if self._obs_on:
                self._m_resets.inc(len(self._counters))
            if self._funnel_on:
                self._fq.blocked.inc(len(self._counters))
            if self._trace_on:
                self._trace.record(
                    Stage.RECOUNT_RESET, event.ts, event_type,
                    f"reset slot {reset} in {len(self._counters)} counters",
                )
            return None

        slots = layout.update_slots.get(event_type)
        if not slots:
            return None
        needs_value = layout.value_slot >= 0 and layout.value_slot in slots
        value = layout.value_of(event) if needs_value else None

        # Update existing counters first (descending slots inside each),
        # then open a counter for the new START so the event cannot
        # extend a prefix through itself.
        self.counter_updates += len(self._counters)
        if self._funnel_on:
            self._fq.extended.inc(len(self._counters))
        for counter in self._counters:
            for slot in slots:
                if slot == 0:
                    continue  # starts are per-counter, not per-slot
                if slot in layout.kleene_slots:
                    counter.update_kleene(slot)
                else:
                    counter.update(
                        slot, value if slot == layout.value_slot else None
                    )
        if self._trace_on and self._counters:
            self._trace.record(
                Stage.COUNTER_UPDATE, event.ts, event_type,
                f"slots={sorted(slots)} counters={len(self._counters)}",
            )
        if event_type in layout.start_types:
            counter = PrefixCounter(
                layout,
                implicit_start=True,
                exp=event.ts + self._window_ms,
                tag=event,
            )
            if layout.value_slot == 0:
                counter.seed_start(layout.value_of(event))
            self._counters.append(counter)
            if len(self._counters) > self.peak_counters:
                self.peak_counters = len(self._counters)
            if self._obs_on:
                self._m_created.inc()
                self._m_active.set(len(self._counters))
            if self._trace_on:
                self._trace.record(
                    Stage.COUNTER_CREATE, event.ts, event_type,
                    f"exp={counter.exp} active={len(self._counters)}",
                )

        if event_type in layout.trigger_types and self._emit_on_trigger:
            return self.result()
        return None

    def _expire(self, now: int) -> None:
        """Purge counters whose START left the window (step 4, Fig. 5)."""
        counters = self._counters
        expired = 0
        while counters and counters[0].exp <= now:
            counters.popleft()
            expired += 1
        if expired:
            if self._obs_on:
                self._m_expired.inc(expired)
                self._m_active.set(len(counters))
            if self._funnel_on:
                self._fq.expired.inc(expired)
            if self._trace_on:
                self._trace.record(
                    Stage.EXPIRE, now, "",
                    f"{expired} counters expired, {len(counters)} remain",
                )

    # ----- results -----------------------------------------------------------

    def result(self) -> Any:
        """Current aggregate: Lemma 4's sum over active counters."""
        self._expire(self._now)
        kind = self.layout.agg_kind
        if kind is AggKind.COUNT:
            return sum(c.full_count for c in self._counters)
        if kind is AggKind.SUM:
            return sum(c.full_wsum for c in self._counters)
        if kind is AggKind.AVG:
            total_count = sum(c.full_count for c in self._counters)
            if not total_count:
                return None
            total = sum(c.full_wsum for c in self._counters)
            return total / total_count
        best: float | None = None
        for counter in self._counters:
            extremum = counter.full_extremum
            if extremum is None:
                continue
            if best is None:
                best = extremum
            elif self.layout.prefers_max:
                best = max(best, extremum)
            else:
                best = min(best, extremum)
        return best

    def count_and_wsum(self) -> tuple[int, float]:
        """COUNT and weighted-sum totals (AVG composition across partitions)."""
        self._expire(self._now)
        count = sum(c.full_count for c in self._counters)
        wsum = sum(c.full_wsum for c in self._counters)
        return count, wsum

    # ----- introspection -------------------------------------------------------

    @property
    def active_counters(self) -> int:
        """Number of live PreCntr structures (the paper's memory metric)."""
        return len(self._counters)

    def counters(self) -> Iterator[PrefixCounter]:
        """Iterate live counters, oldest first (tests, Chop-Connect)."""
        return iter(self._counters)

    def current_objects(self) -> int:
        return len(self._counters)

    def advance_time(self, now: int) -> None:
        """Move the engine clock without an event (expiry on idle streams)."""
        self._now = max(self._now, now)
        self._expire(self._now)

    def inspect(self, max_counters: int = 16) -> dict[str, Any]:
        """JSON-serializable state summary (the admin ``/queries``
        endpoints read this from a scrape thread, so every collection
        is snapshotted before iteration).
        """
        counters = list(self._counters)
        dump = []
        for counter in counters[:max_counters]:
            entry: dict[str, Any] = {
                "exp": counter.exp,
                "counts": list(counter.counts),
            }
            if counter.wsums is not None:
                entry["wsums"] = list(counter.wsums)
            if counter.extrema is not None:
                entry["extrema"] = list(counter.extrema)
            dump.append(entry)
        return {
            "kind": "sem",
            "query": self.query.name,
            "window_ms": self._window_ms,
            "now": self._now,
            "events_processed": self.events_processed,
            "counter_updates": self.counter_updates,
            "active_counters": len(counters),
            "peak_counters": self.peak_counters,
            "agg": self.layout.agg_kind.name.lower(),
            "counters": dump,
            "counters_truncated": max(0, len(counters) - max_counters),
        }
