"""The A-Seq query executor — the library's main entry point.

:class:`ASeqEngine` compiles a :class:`~repro.query.ast.Query` onto the
right runtime (DPC / SEM / vectorized SEM / HPC), applies the
ingestion-time local-predicate filter, and exposes the same
``process`` / ``result`` surface as the baseline
:class:`~repro.baseline.twostep.TwoStepEngine`, so the two are
interchangeable in examples, tests and benchmarks.

>>> from repro.query import parse_query
>>> from repro.events import Event
>>> engine = ASeqEngine(parse_query(
...     "PATTERN SEQ(A, B, C) AGG COUNT WITHIN 100 ms"))
>>> for i, name in enumerate("ABBC"):
...     out = engine.process(Event(name, ts=i))
>>> out  # two matches: (a, b1, c), (a, b2, c)
2
"""

from __future__ import annotations

from time import perf_counter
from typing import Any

from repro.events.event import Event
from repro.core.aggregates import PatternLayout
from repro.core.dpc import DPCEngine
from repro.core.hpc import HPCEngine, partition_attributes
from repro.core.sem import SemEngine
from repro.core.vectorized import VectorizedSemEngine
from repro.obs.funnel import FunnelRecorder, resolve_funnel
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.obs.tracing import Stage, TraceRecorder, resolve_tracer
from repro.query.ast import Query
from repro.query.predicates import local_filter
from repro.query.validate import validate_query


class ASeqEngine:
    """Match-free online aggregation of one CEP aggregation query.

    Parameters
    ----------
    query:
        The compiled query. Every feature of the dialect is accepted:
        negation, local predicates, one full-coverage equivalence
        chain, GROUP BY, any aggregate kind, windowed or not.
    vectorized:
        Use the columnar SEM runtime for windowed queries (a pure
        optimization; results are identical). Ignored for unwindowed
        queries, which already cost O(1) per event under DPC.
    """

    def __init__(
        self,
        query: Query,
        vectorized: bool = False,
        registry: MetricsRegistry | None = None,
        trace: TraceRecorder | None = None,
        funnel: FunnelRecorder | None = None,
    ):
        validate_query(query)
        self.query = query
        self.layout = PatternLayout.of(query)
        self._accepts = local_filter(query.predicates)
        self._relevant = query.relevant_types
        self._trigger_types = self.layout.trigger_types
        self._vectorized = vectorized
        registry = resolve_registry(registry)
        self.obs_registry = registry
        self._obs_on = registry.enabled
        self._m_events = registry.counter(
            "executor_events_total", "events offered to the executor"
        )
        self._m_filtered = registry.counter(
            "executor_events_filtered_total",
            "events dropped by type/local-predicate filtering",
        )
        self._m_emits = registry.counter(
            "executor_emits_total", "fresh aggregates returned on TRIG"
        )
        tracer = resolve_tracer(trace)
        self._trace = tracer
        self._trace_on = tracer.enabled
        funnel = resolve_funnel(funnel)
        self._funnel = funnel
        self._funnel_on = funnel.enabled
        self._fq = funnel.for_query(query.name or "q")
        self._runtime = self._compile()
        self.events_seen = 0
        self.peak_objects = 0

    def _compile(self) -> Any:
        query = self.query
        if partition_attributes(query):
            return HPCEngine(
                query,
                engine_factory=self._partition_factory(),
                registry=self.obs_registry,
                trace=self._trace,
                funnel=self._funnel,
            )
        return self._flat_engine(query)

    def _partition_factory(self):
        layout = self.layout
        vectorized = self._vectorized
        registry = self.obs_registry
        trace = self._trace
        funnel = self._funnel

        def factory(query: Query) -> Any:
            if query.window is None:
                return DPCEngine(query, layout, funnel=funnel)
            if vectorized:
                return VectorizedSemEngine(
                    query, layout, registry=registry, trace=trace,
                    funnel=funnel,
                )
            return SemEngine(
                query, layout, registry=registry, trace=trace, funnel=funnel
            )

        return factory

    def _flat_engine(self, query: Query) -> Any:
        if query.window is None:
            return DPCEngine(query, self.layout, funnel=self._funnel)
        if self._vectorized:
            return VectorizedSemEngine(
                query,
                self.layout,
                registry=self.obs_registry,
                trace=self._trace,
                funnel=self._funnel,
            )
        return SemEngine(
            query, self.layout, registry=self.obs_registry,
            trace=self._trace, funnel=self._funnel,
        )

    # ----- ingestion -------------------------------------------------------

    def process(self, event: Event) -> Any | None:
        """Ingest one event; returns a fresh aggregate on TRIG arrivals.

        Events of irrelevant types or failing a local predicate are
        dropped here and never reach the counting state.
        """
        self.events_seen += 1
        if self._obs_on:
            self._m_events.inc()
        if self._trace_on:
            self._trace.record(
                Stage.INGEST, event.ts, event.event_type
            )
        funnel_on = self._funnel_on
        sampled = False
        if event.event_type in self._relevant:
            if funnel_on:
                fq = self._fq
                if fq.bump_routed(event.ts):
                    sampled = True
                    started = perf_counter()
                    accepted = self._accepts(event)
                    fq.latency["predicate"].observe(
                        (perf_counter() - started) * 1e6
                    )
                else:
                    accepted = self._accepts(event)
            else:
                accepted = self._accepts(event)
        else:
            accepted = False
        if not accepted:
            # The arrival still moves the clock: windows slide on every
            # event (paper Sec. 2.1), not only on relevant ones.
            self._runtime.advance_time(event.ts)
            if self._obs_on:
                self._m_filtered.inc()
            if self._trace_on:
                self._trace.record(
                    Stage.FILTER_DROP, event.ts, event.event_type
                )
            return None
        if funnel_on:
            fq = self._fq
            fq.passed.value += 1.0
            if sampled:
                started = perf_counter()
                output = self._runtime.process(event)
                fq.latency["extend"].observe(
                    (perf_counter() - started) * 1e6
                )
            else:
                output = self._runtime.process(event)
        else:
            output = self._runtime.process(event)
        current = self._runtime.current_objects()
        if current > self.peak_objects:
            self.peak_objects = current
        if output is not None:
            if funnel_on:
                self._fq.emitted.inc()
            if self._obs_on:
                self._m_emits.inc()
            if self._trace_on:
                self._trace.record(
                    Stage.EMIT, event.ts, event.event_type, f"{output!r}"
                )
        return output

    def process_batch(
        self, events: list[Event]
    ) -> list[tuple[Event, Any]]:
        """Ingest a micro-batch; returns ``(event, fresh)`` pairs for the
        TRIG arrivals, in stream order.

        Equivalent to per-event :meth:`process` on an in-order stream,
        but filtering happens before the runtime is touched, the clock
        advances once for a run of filtered events (each runtime expires
        at its *own* event timestamps when it does ingest, so window
        semantics are unchanged), and metric/trace flushes are batched.
        """
        runtime = self._runtime
        relevant = self._relevant
        accepts = self._accepts
        count = len(events)
        if not count:
            return []
        self.events_seen += count
        if self._funnel_on:
            fq = self._fq
            routed = [
                event for event in events if event.event_type in relevant
            ]
            kept = [event for event in routed if accepts(event)]
            if routed:
                fq.routed.inc(len(routed))
                # In-order stream: the slice ends are the span extremes.
                fq.note_ts(routed[0].ts)
                fq.note_ts(routed[-1].ts)
                fq.passed.inc(len(kept))
        else:
            kept = [
                event
                for event in events
                if event.event_type in relevant and accepts(event)
            ]
        if self._obs_on:
            self._m_events.inc(count)
            if len(kept) < count:
                self._m_filtered.inc(count - len(kept))
        if kept:
            batch = getattr(runtime, "process_batch", None)
            if batch is not None:
                emitted = batch(kept)
            else:
                process = runtime.process
                emitted = [
                    (event, fresh)
                    for event in kept
                    if (fresh := process(event)) is not None
                ]
        else:
            emitted = []
        # The last arrival still moves the clock even when filtered:
        # windows slide on every event (paper Sec. 2.1).
        runtime.advance_time(events[-1].ts)
        current = runtime.current_objects()
        if current > self.peak_objects:
            self.peak_objects = current
        if emitted:
            if self._funnel_on:
                self._fq.emitted.inc(len(emitted))
            if self._obs_on:
                self._m_emits.inc(len(emitted))
            if self._trace_on:
                event, fresh = emitted[-1]
                self._trace.record(
                    Stage.EMIT, event.ts, event.event_type,
                    f"batch_outputs={len(emitted)} last={fresh!r}",
                )
        return emitted

    # ----- columnar lane ---------------------------------------------------

    def columnar_plan(self, schema: Any) -> Any | None:
        """Bind this executor to a batch schema (None = not capable).

        The engine caches the returned plan per schema identity; a None
        return routes every batch of that schema through the
        batch→Event materializer instead.
        """
        from repro.core.columnar import plan_for

        return plan_for(self, schema)

    def process_columnar(
        self, batch: Any, plan: Any, routed: bool = True
    ) -> tuple[list[tuple[int, Any]], int] | None:
        """Ingest one :class:`~repro.events.batch.EventBatch` through
        the zero-object kernel; returns ``(emitted, offered)`` where
        ``emitted`` is ``(ts, fresh)`` pairs in stream order and
        ``offered`` is how many events this registration was offered
        (its routed bucket under ``routed=True``, the whole batch
        otherwise — mirroring :meth:`process_batch` accounting on the
        corresponding engine path). A None return means this particular
        batch cannot be evaluated columnar-exactly and must go through
        the materialized fallback; the executor state is untouched.
        """
        selection = plan.evaluate(batch)
        if selection is None:
            return None
        routed_idx, kept_idx = selection
        routed_count = int(routed_idx.size)
        if routed:
            if not routed_count:
                # Parity with routed process_batch: a registration with
                # an empty bucket is skipped entirely.
                return [], 0
            offered = routed_count
            horizon = int(batch.ts[routed_idx[-1]])
        else:
            offered = len(batch)
            horizon = int(batch.ts[-1])
        kept_count = int(kept_idx.size)
        self.events_seen += offered
        if self._funnel_on and routed_count:
            fq = self._fq
            fq.routed.inc(routed_count)
            # In-order batch: the slice ends are the span extremes.
            fq.note_ts(int(batch.ts[routed_idx[0]]))
            fq.note_ts(int(batch.ts[routed_idx[-1]]))
            fq.passed.inc(kept_count)
        if self._obs_on:
            self._m_events.inc(offered)
            if kept_count < offered:
                self._m_filtered.inc(offered - kept_count)
        runtime = self._runtime
        if kept_count:
            emitted = runtime.process_columns(
                batch.codes[kept_idx].tolist(),
                batch.ts[kept_idx].tolist(),
                plan,
                plan.values_for(batch, kept_idx),
            )
        else:
            emitted = []
        # The last offered arrival still moves the clock even when
        # filtered: windows slide on every event (paper Sec. 2.1).
        runtime.advance_time(horizon)
        current = runtime.current_objects()
        if current > self.peak_objects:
            self.peak_objects = current
        if emitted:
            if self._funnel_on:
                self._fq.emitted.inc(len(emitted))
            if self._obs_on:
                self._m_emits.inc(len(emitted))
        return emitted, offered

    def result(self) -> Any:
        """Current aggregate (scalar, or per-key dict for GROUP BY)."""
        return self._runtime.result()

    def advance_time(self, now: int) -> None:
        """Move the clock without an event (idle/routed-skip expiry)."""
        self._runtime.advance_time(now)

    def count_and_wsum(self) -> tuple[int, float]:
        """COUNT and weighted-sum totals (AVG merge across shards)."""
        return self._runtime.count_and_wsum()

    def group_count_and_wsum(self) -> dict[Any, tuple[int, float]]:
        """Per-group COUNT/weighted-sum totals (GROUP BY AVG merge)."""
        return self._runtime.group_count_and_wsum()

    # ----- introspection ------------------------------------------------------

    @property
    def runtime(self) -> Any:
        """The underlying DPC/SEM/HPC runtime (tests, diagnostics)."""
        return self._runtime

    def current_objects(self) -> int:
        """Active PreCntr structures — the paper's memory metric."""
        return self._runtime.current_objects()

    @property
    def events_processed(self) -> int:
        """Events that survived filtering and reached the runtime."""
        return getattr(self._runtime, "events_processed", 0)

    @property
    def counter_updates(self) -> int:
        """Prefix-counter slot updates performed by the runtime."""
        return getattr(self._runtime, "counter_updates", 0)

    def funnel_counts(self) -> dict[str, int]:
        """This query's funnel stage totals (all zero when the funnel
        is off)."""
        return self._fq.counts()

    @property
    def funnel_handle(self) -> Any:
        """Live :class:`~repro.obs.funnel.QueryFunnel` handle (the
        shared null handle when the funnel is off)."""
        return self._fq

    @property
    def funnel(self) -> FunnelRecorder:
        """The funnel recorder (null recorder when instrumentation is
        off) — same public name as the multi-query engines."""
        return self._funnel

    def explain(self) -> dict[str, Any]:
        """Structured query plan (see :mod:`repro.obs.explain`)."""
        from repro.obs.explain import explain_engine
        return explain_engine(self)

    def inspect(self) -> Any:
        """JSON-serializable state summary: query, compiled runtime,
        cost totals, and the runtime's own structured dump (the admin
        ``/queries/<id>/state`` endpoint's payload).
        """
        runtime = self._runtime
        runtime_inspect = getattr(runtime, "inspect", None)
        return {
            "kind": "aseq",
            "query": str(self.query),
            "query_name": self.query.name,
            "runtime_kind": type(runtime).__name__,
            "vectorized": self._vectorized,
            "events_seen": self.events_seen,
            "events_processed": self.events_processed,
            "counter_updates": self.counter_updates,
            "current_objects": self.current_objects(),
            "peak_objects": self.peak_objects,
            "runtime": (
                runtime_inspect() if runtime_inspect is not None else None
            ),
        }
