"""Checkpoint and restore A-Seq engine state.

Because A-Seq's entire state is a handful of counters (that is the
point of the paper), checkpointing is near-free: the state of any
single-query engine serializes to a small JSON-able dict. A stream
processor can persist it on a schedule and resume after a crash from
the last checkpoint plus a replay of the events since.

Scope: DPC, SEM (reference and columnar) and HPC runtimes, i.e.
everything :class:`~repro.core.executor.ASeqEngine` compiles to. The
multi-query engines are excluded — Chop-Connect snapshots reference
live event objects, which is exactly the kind of state the single-query
engines never hold.

>>> from repro.query import seq
>>> from repro.events import Event
>>> query = seq("A", "B").count().within(ms=100).build()
>>> engine = ASeqEngine(query)
>>> _ = engine.process(Event("A", 1))
>>> state = checkpoint(engine)
>>> resumed = restore(query, state)
>>> resumed.process(Event("B", 2))
1
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import CheckpointError
from repro.core.dpc import DPCEngine
from repro.core.executor import ASeqEngine
from repro.core.hpc import HPCEngine
from repro.core.prefix_counter import PrefixCounter
from repro.core.sem import SemEngine
from repro.core.vectorized import VectorizedSemEngine
from repro.query.ast import Query

FORMAT_VERSION = 1


def checkpoint(engine: ASeqEngine) -> dict[str, Any]:
    """Serialize an engine's counting state to a JSON-able dict."""
    runtime = engine.runtime
    return {
        "version": FORMAT_VERSION,
        "query": str(engine.query),
        "runtime": _runtime_state(runtime),
    }


def restore(
    query: Query, state: dict[str, Any], vectorized: bool = False
) -> ASeqEngine:
    """Rebuild an engine for ``query`` from a checkpoint.

    The caller supplies the query (checkpoints carry its rendered text
    only as a consistency check, not as an executable artifact).
    """
    if state.get("version") != FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {state.get('version')!r}"
        )
    if state.get("query") != str(query):
        raise CheckpointError(
            "checkpoint was taken for a different query:\n"
            f"  checkpoint: {state.get('query')!r}\n"
            f"  supplied  : {str(query)!r}"
        )
    engine = ASeqEngine(query, vectorized=vectorized)
    try:
        _load_runtime(engine.runtime, state["runtime"])
    except CheckpointError:
        raise
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointError(
            f"malformed checkpoint state: {error!r}"
        ) from error
    return engine


# ----- per-runtime serialization ------------------------------------------------


def _runtime_state(runtime: Any) -> dict[str, Any]:
    if isinstance(runtime, DPCEngine):
        return {"kind": "dpc", "counter": _counter_state(runtime.counter)}
    if isinstance(runtime, SemEngine):
        return {
            "kind": "sem",
            "now": runtime._now,
            "counters": [
                _counter_state(counter) for counter in runtime.counters()
            ],
        }
    if isinstance(runtime, VectorizedSemEngine):
        head, tail = runtime._head, runtime._tail
        state: dict[str, Any] = {
            "kind": "vectorized",
            "now": runtime._now,
            "counts": runtime._counts[:, head:tail].tolist(),
            "exps": runtime._exps[head:tail].tolist(),
        }
        if runtime._wsums is not None:
            state["wsums"] = runtime._wsums[:, head:tail].tolist()
        if runtime._extrema is not None:
            state["extrema"] = runtime._extrema[:, head:tail].tolist()
        return state
    if isinstance(runtime, HPCEngine):
        return {
            "kind": "hpc",
            "now": runtime._now,
            "partitions": [
                [key, _runtime_state(engine)]
                for key, engine in runtime.partitions()
            ],
        }
    raise CheckpointError(
        f"cannot checkpoint runtime of type {type(runtime).__name__}"
    )


def _load_runtime(runtime: Any, state: dict[str, Any]) -> None:
    kind = state.get("kind")
    if isinstance(runtime, DPCEngine):
        _expect(kind, "dpc")
        _load_counter(runtime.counter, state["counter"])
    elif isinstance(runtime, SemEngine):
        _expect(kind, "sem")
        runtime._now = state["now"]
        runtime._counters.clear()
        for counter_state in state["counters"]:
            counter = PrefixCounter(runtime.layout, implicit_start=True)
            _load_counter(counter, counter_state)
            runtime._counters.append(counter)
    elif isinstance(runtime, VectorizedSemEngine):
        _expect(kind, "vectorized")
        runtime._now = state["now"]
        counts = np.asarray(state["counts"], dtype=np.int64)
        live = counts.shape[1] if counts.size else 0
        while runtime._capacity < max(live, 1):
            runtime._capacity *= 2
        runtime._head = 0
        runtime._tail = live
        length = runtime.layout.length
        runtime._counts = np.zeros(
            (length, runtime._capacity), dtype=np.int64
        )
        runtime._counts[:, :live] = counts
        runtime._exps = np.zeros(runtime._capacity, dtype=np.int64)
        runtime._exps[:live] = np.asarray(state["exps"], dtype=np.int64)
        if runtime._wsums is not None:
            runtime._wsums = np.zeros(
                (length, runtime._capacity), dtype=np.float64
            )
            runtime._wsums[:, :live] = np.asarray(
                state["wsums"], dtype=np.float64
            )
        if runtime._extrema is not None:
            runtime._extrema = np.full(
                (length, runtime._capacity),
                runtime._extreme_identity,
                dtype=np.float64,
            )
            runtime._extrema[:, :live] = np.asarray(
                state["extrema"], dtype=np.float64
            )
    elif isinstance(runtime, HPCEngine):
        _expect(kind, "hpc")
        runtime._now = state["now"]
        for key, partition_state in state["partitions"]:
            if runtime._composite:
                key = tuple(key)  # JSON round-trips tuples as lists
            partition = runtime._engine_factory(runtime.query)
            _load_runtime(partition, partition_state)
            runtime._partitions[key] = partition
            if runtime._per_group:
                group = key[0] if runtime._composite else key
                runtime._by_group.setdefault(group, []).append(partition)
    else:
        raise CheckpointError(
            f"cannot restore into runtime of type {type(runtime).__name__}"
        )


def _expect(kind: Any, wanted: str) -> None:
    if kind != wanted:
        raise CheckpointError(
            f"checkpoint kind {kind!r} does not match the compiled "
            f"runtime ({wanted!r}); was the query or the vectorized flag "
            f"changed?"
        )


def _counter_state(counter: PrefixCounter) -> dict[str, Any]:
    state: dict[str, Any] = {"counts": list(counter.counts)}
    if counter.exp is not None:
        state["exp"] = counter.exp
    if counter.wsums is not None:
        state["wsums"] = list(counter.wsums)
    if counter.extrema is not None:
        state["extrema"] = list(counter.extrema)
    return state


def _load_counter(counter: PrefixCounter, state: dict[str, Any]) -> None:
    counter.counts[:] = state["counts"]
    counter.exp = state.get("exp")
    if counter.wsums is not None:
        counter.wsums[:] = state["wsums"]
    if counter.extrema is not None:
        counter.extrema[:] = state["extrema"]
