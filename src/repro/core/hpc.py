"""HPC — Hashed Prefix Counters (paper Sec. 3.4, Fig. 8).

Equivalence predicates (``A.id = B.id = C.id``) and GROUP BY both
partition the stream by an attribute value; the pattern is then
aggregated independently inside each partition by a nested DPC/SEM
engine. For an equivalence predicate the partition results are summed;
for GROUP BY they are reported per key.

Partitioning requires the chain to cover every positive pattern type
(as in all of the paper's examples); a partial chain would force
uncovered events into every partition, which the paper does not define
— the executor rejects such queries up front. Negated types may be
uncovered: a negative instance that carries the partition attribute
invalidates only its own partition, one that does not carries no key
and invalidates every partition.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.errors import PredicateError, QueryError
from repro.events.event import Event
from repro.core.aggregates import PatternLayout
from repro.core.dpc import DPCEngine
from repro.core.sem import SemEngine
from repro.obs.funnel import FunnelRecorder, resolve_funnel
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.obs.tracing import Stage, TraceRecorder, resolve_tracer
from repro.query.ast import AggKind, Query
from repro.query.predicates import EquivalencePredicate


def partition_attributes(query: Query) -> tuple[str, ...]:
    """The attributes HPC partitions on (composite keys for several
    chains); empty for unpartitioned queries.

    Each equivalence chain must cover every positive pattern type (as
    in all of the paper's examples) and use one attribute name across
    its terms; several chains partition by the attribute tuple. GROUP
    BY and chains may coexist only when GROUP BY names one of the chain
    attributes (the common "per user" idiom); anything else needs
    semantics the paper does not define.
    """
    equivalences = [
        p for p in query.predicates if isinstance(p, EquivalencePredicate)
    ]
    chain_attributes: list[str] = []
    for chain in equivalences:
        covered = set(chain.event_types)
        missing = set(query.pattern.all_positive_event_types) - covered
        if missing:
            raise QueryError(
                f"equivalence chain {chain} must cover every positive "
                f"pattern type; missing {sorted(missing)}"
            )
        attributes = {attr for _, attr in chain.terms}
        if len(attributes) != 1:
            raise QueryError(
                "HPC partitioning needs the same attribute name on every "
                "term of the equivalence chain"
            )
        attribute = next(iter(attributes))
        if attribute in chain_attributes:
            raise QueryError(
                f"duplicate equivalence chains on attribute {attribute!r}"
            )
        chain_attributes.append(attribute)
    if query.group_by is not None:
        # The composite key leads with GROUP BY's attribute; the
        # per-group report combines partitions sharing that component.
        ordered = [query.group_by] + [
            a for a in chain_attributes if a != query.group_by
        ]
        return tuple(ordered)
    return tuple(chain_attributes)


def partition_attribute(query: Query) -> str | None:
    """Back-compat single-attribute view (None when unpartitioned).

    Raises for multi-chain queries — use :func:`partition_attributes`.
    """
    attributes = partition_attributes(query)
    if not attributes:
        return None
    if len(attributes) > 1:
        raise QueryError(
            f"query partitions on a composite key {attributes!r}; use "
            f"partition_attributes()"
        )
    return attributes[0]


class HPCEngine:
    """Partitioned A-Seq evaluation (equivalence predicates / GROUP BY)."""

    def __init__(
        self,
        query: Query,
        engine_factory: Callable[[Query], Any] | None = None,
        registry: MetricsRegistry | None = None,
        trace: TraceRecorder | None = None,
        funnel: FunnelRecorder | None = None,
    ):
        self.query = query
        attributes = partition_attributes(query)
        if not attributes:
            raise QueryError(
                "HPC needs an equivalence predicate or a GROUP BY clause"
            )
        self._attributes = attributes
        self._composite = len(attributes) > 1
        self._per_group = query.group_by is not None
        self.layout = PatternLayout.of(query)
        # Partition engines share one funnel series per query name (the
        # registry keys metrics on (name, labels)), so funnel counts sum
        # naturally across partitions.
        self._funnel = resolve_funnel(funnel)
        if engine_factory is None:
            layout = self.layout
            if query.window is not None:
                def engine_factory(q: Query) -> SemEngine:
                    return SemEngine(
                        q, layout, registry=self.obs_registry,
                        trace=self._trace, funnel=self._funnel,
                    )
            else:
                def engine_factory(q: Query) -> DPCEngine:
                    return DPCEngine(q, layout, funnel=self._funnel)
        self._engine_factory = engine_factory
        self._partitions: dict[Any, Any] = {}
        #: GROUP BY value (the leading key component) -> its engines.
        self._by_group: dict[Any, list[Any]] = {}
        self._negated = set(query.pattern.negated_types)
        self._trigger_types = self.layout.trigger_types
        self._now = 0
        self.events_processed = 0
        registry = resolve_registry(registry)
        self.obs_registry = registry
        self._obs_on = registry.enabled
        self._m_partitions_created = registry.counter(
            "hpc_partitions_created_total",
            "per-key partition engines created",
        )
        self._m_partitions_live = registry.gauge(
            "hpc_partitions_live", "partition engines currently held"
        )
        trace = resolve_tracer(trace)
        self._trace = trace
        self._trace_on = trace.enabled

    def _key_of(self, event: Event) -> Any:
        """Partition key of ``event`` (scalar or composite tuple).

        Returns ``_MISSING`` when any component attribute is absent.
        """
        if not self._composite:
            return event.get(self._attributes[0], _MISSING)
        components = []
        for attribute in self._attributes:
            value = event.get(attribute, _MISSING)
            if value is _MISSING:
                return _MISSING
            components.append(value)
        return tuple(components)

    def process(self, event: Event) -> Any | None:
        """Ingest one (pre-filtered) event; returns the aggregate on TRIG."""
        self.events_processed += 1
        self._now = max(self._now, event.ts)
        key = self._key_of(event)
        if key is _MISSING:
            if event.event_type in self._negated:
                for engine in self._partitions.values():
                    engine.process(event)
                return None
            raise PredicateError(
                f"event of type {event.event_type!r} lacks partition "
                f"attribute(s) {self._attributes!r}"
            )
        engine = self._partitions.get(key)
        if engine is None:
            engine = self._engine_factory(self.query)
            self._partitions[key] = engine
            if self._per_group:
                group = key[0] if self._composite else key
                self._by_group.setdefault(group, []).append(engine)
            if self._obs_on:
                self._m_partitions_created.inc()
                self._m_partitions_live.set(len(self._partitions))
            if self._trace_on:
                self._trace.record(
                    Stage.PARTITION_CREATE, event.ts, event.event_type,
                    f"key={key!r} partitions={len(self._partitions)}",
                )
        engine.process(event)
        if event.event_type in self._trigger_types:
            if self._per_group:
                # Paper Sec. 3.4: GROUP BY results are output per
                # partition — and only this group's aggregate can have
                # changed on this arrival.
                group = key[0] if self._composite else key
                return {group: self._group_result(group)}
            return self.result()
        return None

    # ----- results -------------------------------------------------------------

    def result(self) -> Any:
        """Per-key dict for GROUP BY; combined scalar for equivalence."""
        for engine in self._partitions.values():
            engine.advance_time(self._now)
        if self._per_group:
            return {
                group: self._combined(engines)
                for group, engines in self._by_group.items()
            }
        return self._combined(list(self._partitions.values()))

    def _group_result(self, group: Any) -> Any:
        engines = self._by_group.get(group, [])
        for engine in engines:
            engine.advance_time(self._now)
        return self._combined(engines)

    def advance_time(self, now: int) -> None:
        """Move the shared clock forward (events of irrelevant types)."""
        self._now = max(self._now, now)

    def count_and_wsum(self) -> tuple[int, float]:
        """COUNT and weighted-sum totals over every partition.

        The partition results compose exactly (disjoint keys, paper
        Sec. 3.4), which is also what lets :class:`ShardedStreamEngine`
        merge AVG across worker processes without precision loss.
        """
        total_count = 0
        total = 0.0
        for engine in self._partitions.values():
            engine.advance_time(self._now)
            count, wsum = engine.count_and_wsum()
            total_count += count
            total += wsum
        return total_count, total

    def group_count_and_wsum(self) -> dict[Any, tuple[int, float]]:
        """Per-group COUNT/weighted-sum totals (GROUP BY AVG merge)."""
        totals: dict[Any, tuple[int, float]] = {}
        for group, engines in self._by_group.items():
            total_count = 0
            total = 0.0
            for engine in engines:
                engine.advance_time(self._now)
                count, wsum = engine.count_and_wsum()
                total_count += count
                total += wsum
            totals[group] = (total_count, total)
        return totals

    def _combined(self, engines: list[Any]) -> Any:
        kind = self.layout.agg_kind
        results = [engine.result() for engine in engines]
        if kind is AggKind.COUNT:
            return sum(results)
        if kind is AggKind.SUM:
            return sum(results)
        if kind is AggKind.AVG:
            total_count = 0
            total = 0.0
            for engine in engines:
                count, wsum = engine.count_and_wsum()
                total_count += count
                total += wsum
            return total / total_count if total_count else None
        extrema = [r for r in results if r is not None]
        if not extrema:
            return None
        return max(extrema) if self.layout.prefers_max else min(extrema)

    # ----- introspection -----------------------------------------------------------

    @property
    def partition_count(self) -> int:
        return len(self._partitions)

    def partitions(self) -> Iterator[tuple[Any, Any]]:
        return iter(self._partitions.items())

    def current_objects(self) -> int:
        return sum(
            engine.current_objects() for engine in self._partitions.values()
        )

    @property
    def counter_updates(self) -> int:
        """Slot/counter updates summed across partition engines."""
        return sum(
            getattr(engine, "counter_updates", 0)
            for engine in list(self._partitions.values())
        )

    def inspect(self, max_partitions: int = 16) -> dict[str, Any]:
        """JSON-serializable state summary (admin endpoints).

        ``partitions`` holds the ``max_partitions`` heaviest keys by
        live object count, each with its nested engine summary trimmed
        to the totals (no per-counter dumps at this level).
        """
        partitions = list(self._partitions.items())
        weighted = []
        for key, engine in partitions:
            objects = engine.current_objects()
            weighted.append((objects, repr(key), engine))
        weighted.sort(key=lambda item: item[0], reverse=True)
        top = []
        for objects, key_repr, engine in weighted[:max_partitions]:
            top.append({
                "key": key_repr,
                "objects": objects,
                "events_processed": getattr(engine, "events_processed", 0),
            })
        return {
            "kind": "hpc",
            "query": self.query.name,
            "partition_attributes": list(self._attributes),
            "per_group": self._per_group,
            "now": self._now,
            "events_processed": self.events_processed,
            "counter_updates": self.counter_updates,
            "partition_count": len(partitions),
            "active_counters": sum(item[0] for item in weighted),
            "agg": self.layout.agg_kind.name.lower(),
            "partitions": top,
            "partitions_truncated": max(0, len(partitions) - max_partitions),
        }


class _Missing:
    __slots__ = ()


_MISSING = _Missing()
