"""Columnar execution plans: schema-bound routing and predicate masks.

A :class:`ColumnarPlan` binds one :class:`~repro.core.executor.ASeqEngine`
registration to one :class:`~repro.events.batch.BatchSchema`: a boolean
type-code LUT replaces the per-event ``event_type in relevant`` check,
and the query's local predicates compile into vectorized boolean column
masks that replicate :mod:`repro.query.predicates` semantics (events of
other types pass vacuously; a missing attribute means the per-event path
would raise :class:`~repro.errors.PredicateError`).

Capability gating is conservative: a plan exists only when the compiled
runtime is the flat :class:`~repro.core.vectorized.VectorizedSemEngine`
(windowed, no negation, no Kleene, no HPC partitioning), tracing is off,
and every predicate is mask-compilable. Everything else — and any batch
whose columns cannot satisfy the plan (missing attribute, exotic value
column) — goes through the batch→Event materializer instead, so results
and raised errors stay bit-identical to the reference engine.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.events.batch import BatchSchema, EventBatch
from repro.query.predicates import (
    AttributeComparison,
    LocalPredicate,
    comparison_fn,
)

#: Mask transformer: mutate ``mask`` in place for one predicate; a
#: False return means "this batch needs the per-event fallback".
_MaskFn = Callable[[EventBatch, np.ndarray, np.ndarray], bool]


def columnar_capable(executor: Any) -> bool:
    """Schema-independent capability check for one executor."""
    from repro.core.vectorized import VectorizedSemEngine

    runtime = getattr(executor, "runtime", None)
    if not isinstance(runtime, VectorizedSemEngine):
        return False
    layout = executor.layout
    if layout.reset_slot or layout.kleene_slots:
        return False
    if getattr(executor, "_trace_on", False):
        # Tracing is a per-event debug surface; the kernel would have
        # to re-trace arrivals one by one, which defeats the lane.
        return False
    # Routing buckets (layout slots) and the predicate filter's notion
    # of relevance must agree, or bucket-level accounting would drift
    # from the per-event path.
    if frozenset(layout.update_slots) != frozenset(
        executor.query.relevant_types
    ):
        return False
    return all(
        isinstance(p, (LocalPredicate, AttributeComparison))
        for p in executor.query.predicates
    )


def _compile_local(
    predicate: LocalPredicate, schema: BatchSchema
) -> _MaskFn | None:
    code = schema.code_of.get(predicate.event_type)
    if code is None:
        return None  # no rows of this type can exist: vacuous pass
    op = comparison_fn(predicate.op)
    name = predicate.attribute
    constant = predicate.value

    def apply(
        batch: EventBatch, codes: np.ndarray, mask: np.ndarray
    ) -> bool:
        selected = codes == code
        if not selected.any():
            return True
        column = batch.cols.get(name)
        if column is None:
            return False  # attribute missing: per-event path raises
        missing = batch.present.get(name)
        if missing is not None and bool((selected & ~missing).any()):
            return False
        accepted = op(column, constant)
        np.logical_and(mask, ~selected | accepted, out=mask)
        return True

    return apply


def _compile_comparison(
    predicate: AttributeComparison, schema: BatchSchema
) -> _MaskFn | None:
    code = schema.code_of.get(predicate.event_type)
    if code is None:
        return None
    op = comparison_fn(predicate.op)
    left = predicate.left_attribute
    right = predicate.right_attribute

    def apply(
        batch: EventBatch, codes: np.ndarray, mask: np.ndarray
    ) -> bool:
        selected = codes == code
        if not selected.any():
            return True
        left_col = batch.cols.get(left)
        right_col = batch.cols.get(right)
        if left_col is None or right_col is None:
            return False
        for name in (left, right):
            missing = batch.present.get(name)
            if missing is not None and bool(
                (selected & ~missing).any()
            ):
                return False
        accepted = op(left_col, right_col)
        np.logical_and(mask, ~selected | accepted, out=mask)
        return True

    return apply


class ColumnarPlan:
    """One registration's bound plan for one batch schema."""

    __slots__ = (
        "schema",
        "routed_lut",
        "slots_of_code",
        "is_start",
        "is_trigger",
        "needs_value",
        "value_attribute",
        "value_needed_lut",
        "_mask_fns",
    )

    def __init__(self, executor: Any, schema: BatchSchema) -> None:
        layout = executor.layout
        n_types = len(schema.types)
        self.schema = schema
        self.routed_lut = np.zeros(n_types, dtype=bool)
        slots_of: list[tuple[int, ...]] = [()] * n_types
        self.is_start = [False] * n_types
        self.is_trigger = [False] * n_types
        for name, slots in layout.update_slots.items():
            code = schema.code_of.get(name)
            if code is None:
                continue
            self.routed_lut[code] = True
            slots_of[code] = slots
            self.is_start[code] = name in layout.start_types
            self.is_trigger[code] = name in layout.trigger_types
        self.slots_of_code = slots_of
        self.value_attribute = (
            layout.value_attribute if layout.value_slot >= 0 else None
        )
        if self.value_attribute is not None:
            lut = np.zeros(n_types, dtype=bool)
            for code in range(n_types):
                if layout.value_slot in slots_of[code]:
                    lut[code] = True
            self.value_needed_lut = lut
            self.needs_value = bool(lut.any())
        else:
            self.value_needed_lut = None
            self.needs_value = False
        mask_fns: list[_MaskFn] = []
        for predicate in executor.query.predicates:
            if isinstance(predicate, LocalPredicate):
                fn = _compile_local(predicate, schema)
            else:
                fn = _compile_comparison(predicate, schema)
            if fn is not None:
                mask_fns.append(fn)
        self._mask_fns = mask_fns

    def evaluate(
        self, batch: EventBatch
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Routing + predicate masks for one batch.

        Returns ``(routed_idx, kept_idx)`` — rows of relevant types,
        then the subset passing every local predicate — or None when
        this batch needs the materialized fallback (a predicate or the
        aggregate's value column cannot be evaluated columnar-exactly,
        including the cases where the per-event path raises
        :class:`~repro.errors.PredicateError`).
        """
        codes = batch.codes
        routed_mask = self.routed_lut[codes]
        routed_idx = np.flatnonzero(routed_mask)
        if not routed_idx.size:
            return routed_idx, routed_idx
        if self._mask_fns:
            mask = routed_mask.copy()
            try:
                for fn in self._mask_fns:
                    if not fn(batch, codes, mask):
                        return None
            except Exception:
                # Heterogeneous columns can make a vectorized compare
                # raise where the short-circuiting per-event evaluator
                # would not; the fallback path settles it exactly.
                return None
            kept_idx = np.flatnonzero(mask)
        else:
            kept_idx = routed_idx
        if self.needs_value and kept_idx.size:
            needed = self.value_needed_lut[codes[kept_idx]]
            if needed.any():
                column = batch.cols.get(self.value_attribute)
                if column is None:
                    return None  # per-event path raises PredicateError
                missing = batch.present.get(self.value_attribute)
                if missing is not None and bool(
                    (~missing[kept_idx] & needed).any()
                ):
                    return None
        return routed_idx, kept_idx

    def values_for(
        self, batch: EventBatch, kept_idx: np.ndarray
    ) -> list[Any] | None:
        """The aggregate value column for the kept rows (None for COUNT
        or when no kept row needs a value)."""
        if not self.needs_value:
            return None
        column = batch.cols.get(self.value_attribute)
        if column is None:
            return None
        return column[kept_idx].tolist()


def plan_for(executor: Any, schema: BatchSchema) -> ColumnarPlan | None:
    """Build the plan binding ``executor`` to ``schema`` (None when the
    registration is not columnar-capable)."""
    if not columnar_capable(executor):
        return None
    return ColumnarPlan(executor, schema)
