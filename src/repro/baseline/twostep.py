"""The two-step comparator: construct matches, then aggregate.

This is the state of the art the paper measures against (Sec. 2.2 /
Sec. 6): a stack-based matcher materializes every sequence match, the
matches are retained until their START event expires, and the
aggregation function is applied over the retained match set as a
separate step. Negation is a post-construction filter inside
:class:`~repro.baseline.matcher.StackMatcher`.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import PredicateError, QueryError
from repro.events.event import Event
from repro.baseline.matcher import Match, StackMatcher
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.query.ast import AggKind, Query
from repro.query.predicates import local_filter


class _MatchStore:
    """Live sequence matches for one partition, with window expiry.

    COUNT and SUM are maintained incrementally; MAX/MIN use a
    lazy-deletion heap (expired tops are popped on read, and the heap is
    rebuilt when dead entries dominate).
    """

    __slots__ = (
        "_window_ms",
        "_expiry_heap",
        "count",
        "total",
        "_extremum_heap",
        "_extremum_sign",
        "matches_materialized",
    )

    def __init__(self, window_ms: int | None, extremum_sign: int = 0):
        self._window_ms = window_ms
        #: (start_ts, value) pairs ordered by expiry.
        self._expiry_heap: list[tuple[int, float]] = []
        self.count = 0
        self.total = 0.0
        #: +1 keeps a max-heap, -1 a min-heap, 0 disables extremum tracking.
        self._extremum_sign = extremum_sign
        self._extremum_heap: list[tuple[float, int]] = []
        self.matches_materialized = 0

    def add(self, start_ts: int, value: float) -> None:
        self.count += 1
        self.total += value
        self.matches_materialized += 1
        heapq.heappush(self._expiry_heap, (start_ts, value))
        if self._extremum_sign:
            heapq.heappush(
                self._extremum_heap, (-self._extremum_sign * value, start_ts)
            )

    def purge(self, now: int) -> None:
        """Expire matches whose START event left the window."""
        if self._window_ms is None:
            return
        horizon = now - self._window_ms
        heap = self._expiry_heap
        while heap and heap[0][0] <= horizon:
            _, value = heapq.heappop(heap)
            self.count -= 1
            self.total -= value
        if self._extremum_sign:
            extremum = self._extremum_heap
            while extremum and extremum[0][1] <= horizon:
                heapq.heappop(extremum)
            if len(extremum) > 64 and len(extremum) > 4 * self.count:
                live = [
                    entry for entry in extremum if entry[1] > horizon
                ]
                heapq.heapify(live)
                self._extremum_heap = live

    def extremum(self, now: int) -> float | None:
        """Current MAX (sign=+1) or MIN (sign=-1) over live matches."""
        if not self._extremum_sign:
            raise QueryError("extremum tracking was not enabled")
        self.purge(now)
        heap = self._extremum_heap
        horizon = (now - self._window_ms) if self._window_ms else None
        while heap and horizon is not None and heap[0][1] <= horizon:
            heapq.heappop(heap)
        if not heap:
            return None
        return -self._extremum_sign * heap[0][0]

    @property
    def live_matches(self) -> int:
        return self.count


class _DeferredMatches:
    """Unfiltered positive matches retained for output-time filtering.

    This is the paper's "later-filter-step" negation baseline
    (Sec. 3.3): every positive match is kept and the negation check is
    re-run over the whole retained set at each output.
    """

    __slots__ = ("_window_ms", "_heap", "_serial")

    def __init__(self, window_ms: int | None):
        self._window_ms = window_ms
        self._heap: list[tuple[int, int, Match]] = []
        self._serial = 0

    def add(self, match: Match) -> None:
        # The serial breaks heap ties before comparison could reach the
        # (uncomparable) match tuple.
        self._serial += 1
        heapq.heappush(self._heap, (match[0].ts, self._serial, match))

    def purge(self, now: int) -> None:
        if self._window_ms is None:
            return
        horizon = now - self._window_ms
        heap = self._heap
        while heap and heap[0][0] <= horizon:
            heapq.heappop(heap)

    def count_valid(self, passes) -> int:
        return sum(1 for _, _, match in self._heap if passes(match))

    def __len__(self) -> int:
        return len(self._heap)


class _Partition:
    """One stream partition: a matcher plus its match store."""

    __slots__ = ("matcher", "store", "deferred")

    def __init__(self, query: Query, extremum_sign: int, deferred: bool):
        self.matcher = StackMatcher(query, defer_negation=deferred)
        window_ms = query.window.size_ms if query.window else None
        self.store = _MatchStore(window_ms, extremum_sign)
        self.deferred = _DeferredMatches(window_ms) if deferred else None


class TwoStepEngine:
    """Detect-then-aggregate evaluation of one CEP aggregation query.

    Usage::

        engine = TwoStepEngine(query)
        for event in stream:
            output = engine.process(event)
            if output is not None:
                ...  # a TRIG arrival produced a fresh aggregate

    ``process`` returns the aggregate value (or a per-group dict when
    the query has GROUP BY) on trigger arrivals, ``None`` otherwise.
    """

    def __init__(
        self,
        query: Query,
        negation_mode: str = "eager",
        registry: MetricsRegistry | None = None,
    ):
        if negation_mode not in ("eager", "deferred"):
            raise QueryError(
                "negation_mode must be 'eager' (filter at construction) "
                "or 'deferred' (the paper's later-filter-step)"
            )
        self._deferred = (
            negation_mode == "deferred" and query.pattern.has_negation
        )
        if self._deferred and query.aggregate.kind is not AggKind.COUNT:
            raise QueryError(
                "deferred negation filtering supports COUNT queries"
            )
        self.query = query
        self._trigger_types = frozenset(query.pattern.trigger_alternatives)
        self._relevant = query.relevant_types
        self._accepts = local_filter(query.predicates)
        self._group_by = query.group_by
        self._extremum_sign = {
            AggKind.MAX: 1,
            AggKind.MIN: -1,
        }.get(query.aggregate.kind, 0)
        self._value_of = _value_extractor(query)
        self._partitions: dict[Any, _Partition] = {}
        if self._group_by is None:
            self._partitions[None] = self._new_partition()
        self._now = 0
        self.events_processed = 0
        self.peak_objects = 0
        registry = resolve_registry(registry)
        self.obs_registry = registry
        self._obs_on = registry.enabled
        self._m_events = registry.counter(
            "twostep_events_total", "events reaching the two-step matcher"
        )
        self._m_matches = registry.counter(
            "twostep_matches_materialized_total",
            "sequence matches constructed (the two-step hallmark cost)",
        )
        self._m_stack_depth = registry.gauge(
            "twostep_stack_entries_live",
            "live stack entries across partitions",
        )
        self._m_live_objects = registry.gauge(
            "twostep_live_objects",
            "paper-style object count: entries + pointers + matches",
        )

    def _new_partition(self) -> _Partition:
        return _Partition(self.query, self._extremum_sign, self._deferred)

    # ----- ingestion -----------------------------------------------------

    def process(self, event: Event) -> Any | None:
        """Ingest one event; returns a fresh aggregate on TRIG arrivals."""
        self._now = max(self._now, event.ts)
        if event.event_type not in self._relevant:
            return None
        if not self._accepts(event):
            return None
        self.events_processed += 1
        routed = self._route(event)
        materialized = 0
        for _, partition in routed:
            new_matches = partition.matcher.process(event)
            materialized += len(new_matches)
            if partition.deferred is not None:
                for match in new_matches:
                    partition.deferred.add(match)
            else:
                for match in new_matches:
                    partition.store.add(match[0].ts, self._value_of(match))
        current = self._note_memory()
        if self._obs_on:
            self._m_events.inc()
            if materialized:
                self._m_matches.inc(materialized)
            self._m_stack_depth.set(sum(
                partition.matcher.live_entries
                for partition in self._partitions.values()
            ))
            self._m_live_objects.set(current)
        if event.event_type in self._trigger_types:
            if self._group_by is not None:
                # Per-partition output: only the routed partition's
                # aggregate can have changed (mirrors HPC).
                ((key, partition),) = routed
                return {key: self._partition_result(partition)}
            return self.result()
        return None

    def _route(self, event: Event) -> list[tuple[Any, _Partition]]:
        if self._group_by is None:
            return [(None, self._partitions[None])]
        key = event.get(self._group_by, _MISSING)
        if key is _MISSING:
            if event.event_type in self.query.pattern.negated_types:
                # A negated instance without the grouping attribute
                # invalidates in every partition.
                return list(self._partitions.items())
            raise PredicateError(
                f"event of type {event.event_type!r} lacks GROUP BY "
                f"attribute {self._group_by!r}"
            )
        partition = self._partitions.get(key)
        if partition is None:
            partition = self._new_partition()
            self._partitions[key] = partition
        return [(key, partition)]

    # ----- results --------------------------------------------------------

    def result(self) -> Any:
        """Current aggregate: scalar, or ``{group_key: value}`` for GROUP BY."""
        if self._group_by is None:
            return self._partition_result(self._partitions[None])
        return {
            key: self._partition_result(partition)
            for key, partition in self._partitions.items()
        }

    def _partition_result(self, partition: _Partition) -> Any:
        if partition.deferred is not None:
            # The later-filter-step: re-run the negation check over the
            # whole retained match set at every output.
            partition.deferred.purge(self._now)
            return partition.deferred.count_valid(
                partition.matcher.negation_ok
            )
        store = partition.store
        store.purge(self._now)
        kind = self.query.aggregate.kind
        if kind is AggKind.COUNT:
            return store.count
        if kind is AggKind.SUM:
            return store.total if store.count else 0
        if kind is AggKind.AVG:
            return store.total / store.count if store.count else None
        return store.extremum(self._now)

    # ----- memory accounting -----------------------------------------------

    def _note_memory(self) -> int:
        current = self.current_objects()
        if current > self.peak_objects:
            self.peak_objects = current
        return current

    def current_objects(self) -> int:
        """Paper-style object count: stack entries + pointers + matches."""
        total = 0
        for partition in self._partitions.values():
            entries = partition.matcher.live_entries
            total += 2 * entries  # event reference + rip pointer
            total += partition.matcher.live_negative_instances
            total += partition.store.live_matches
            if partition.deferred is not None:
                total += len(partition.deferred)
        return total

    @property
    def matches_materialized(self) -> int:
        """Total sequence matches ever constructed (two-step's hallmark)."""
        total = 0
        for partition in self._partitions.values():
            total += partition.store.matches_materialized
            if partition.deferred is not None:
                total += partition.deferred._serial
        return total


class _Missing:
    __slots__ = ()


_MISSING = _Missing()


def _value_extractor(query: Query) -> Callable[[Match], float]:
    """Build the per-match value function for the AGG clause."""
    aggregate = query.aggregate
    if aggregate.kind is AggKind.COUNT:
        return lambda match: 1.0
    position = query.pattern.position_of_event_type(aggregate.event_type)
    attribute = aggregate.attribute

    def value_of(match: Match) -> float:
        event = match[position]
        value = event.get(attribute, _MISSING)
        if value is _MISSING:
            raise PredicateError(
                f"event of type {event.event_type!r} lacks aggregate "
                f"attribute {attribute!r}"
            )
        return value

    return value_of
