"""Stack-based sequence match construction (SASE-style NFA evaluation).

On each trigger arrival the matcher runs the depth-first search of
paper Sec. 2.2 along rip pointers and materializes every *new* sequence
match ending at the trigger instance. This is exactly the work A-Seq
eliminates, so it is kept deliberately faithful: matches are built as
event tuples, negation is applied as a post-construction filter, and
costs grow with the number of constructible sequences.
"""

from __future__ import annotations

import bisect

from repro.errors import QueryError
from repro.events.event import Event
from repro.baseline.stacks import EventStack, StackEntry
from repro.query.ast import Query, SeqPattern
from repro.query.predicates import EquivalencePredicate

Match = tuple[Event, ...]


class _NegativeLog:
    """Sorted timestamps of one negated type's instances, window-purged.

    Stored as a list with a lazily advanced start offset so membership
    checks can bisect directly; the list is compacted once the dead
    prefix dominates.
    """

    __slots__ = ("_timestamps", "_start")

    def __init__(self) -> None:
        self._timestamps: list[int] = []
        self._start = 0

    def __len__(self) -> int:
        return len(self._timestamps) - self._start

    def add(self, ts: int) -> None:
        self._timestamps.append(ts)

    def purge(self, now: int, window_ms: int) -> None:
        timestamps = self._timestamps
        start = self._start
        horizon = now - window_ms
        while start < len(timestamps) and timestamps[start] <= horizon:
            start += 1
        self._start = start
        if start > 64 and start * 2 > len(timestamps):
            del timestamps[:start]
            self._start = 0

    def any_between(self, low: int, high: int) -> bool:
        """True when some instance arrived strictly inside ``(low, high)``."""
        timestamps = self._timestamps
        index = bisect.bisect_right(timestamps, low, lo=self._start)
        return index < len(timestamps) and timestamps[index] < high


class StackMatcher:
    """Constructs sequence matches for one query over one stream partition.

    Parameters
    ----------
    query:
        The pattern query. Local predicates are expected to be applied
        by the caller (ingestion filter); equivalence predicates are
        enforced edge-by-edge during the DFS, and negation is applied as
        a post-filter on constructed matches — both mirroring how the
        two-step systems the paper compares against behave.
    """

    def __init__(self, query: Query, defer_negation: bool = False):
        if query.pattern.has_kleene:
            raise QueryError(
                "the stack-based baseline does not support Kleene "
                "patterns (neither did the systems the paper compares "
                "against); use ASeqEngine"
            )
        self._pattern: SeqPattern = query.pattern
        self._window_ms = query.window.size_ms if query.window else None
        # The paper's "later-filter-step" baseline keeps all positive
        # matches and re-filters them above the plan (Sec. 3.3); eager
        # filtering at construction is this library's kinder default.
        self._defer_negation = defer_negation
        self._positives = self._pattern.positive_types
        self._length = len(self._positives)
        self._stacks = [EventStack(t) for t in self._positives]
        # An event type may fill several pattern positions (including
        # via choice positions); precompute the position lists so
        # arrival dispatch is O(1) dict lookup.
        self._positions_of: dict[str, list[int]] = {}
        for position, names in enumerate(self._pattern.alternatives):
            for event_type in names:
                self._positions_of.setdefault(event_type, []).append(
                    position
                )
        self._negations = self._pattern.negations
        self._negative_logs: dict[str, _NegativeLog] = {
            name: _NegativeLog() for name in self._pattern.negated_types
        }
        self._equivalences: tuple[EquivalencePredicate, ...] = tuple(
            p for p in query.predicates if isinstance(p, EquivalencePredicate)
        )
        #: Running total of DFS edge explorations (cost accounting).
        self.edges_explored = 0

    # ----- arrival processing ----------------------------------------------

    def process(self, event: Event) -> list[Match]:
        """Ingest one event; returns the new full matches it completes."""
        self._purge(event.ts)
        log = self._negative_logs.get(event.event_type)
        if log is not None:
            log.add(event.ts)
        positions = self._positions_of.get(event.event_type)
        if not positions:
            return []
        new_matches: list[Match] = []
        # Push into every position the type occupies. Process deeper
        # positions first so the event cannot chain with itself.
        for position in sorted(positions, reverse=True):
            rip = (
                self._stacks[position - 1].total_inserted
                if position > 0
                else 0
            )
            entry = self._stacks[position].push(event, rip)
            if position == self._length - 1:
                self._construct(entry, new_matches)
        if self._negations and not self._defer_negation:
            new_matches = [m for m in new_matches if self._negation_ok(m)]
        return new_matches

    def _purge(self, now: int) -> None:
        if self._window_ms is None:
            return
        for stack in self._stacks:
            stack.purge_expired(now, self._window_ms)
        for log in self._negative_logs.values():
            log.purge(now, self._window_ms)

    # ----- DFS construction --------------------------------------------------

    def _construct(self, entry: StackEntry, out: list[Match]) -> None:
        """DFS from a trigger entry, rooted at the last pattern position."""
        bindings = self._bind(entry.event, {}, self._length - 1)
        if bindings is None:
            return
        self._extend(self._length - 1, entry, (entry.event,), bindings, out)

    def _extend(
        self,
        position: int,
        entry: StackEntry,
        suffix: Match,
        bindings: dict[int, object],
        out: list[Match],
    ) -> None:
        if position == 0:
            out.append(suffix)
            return
        previous = self._stacks[position - 1]
        event_ts = entry.event.ts
        for candidate in previous.live_below(entry.rip):
            self.edges_explored += 1
            candidate_event = candidate.event
            if candidate_event.ts >= event_ts:
                continue
            extended = self._bind(candidate_event, bindings, position - 1)
            if extended is None:
                continue
            self._extend(
                position - 1,
                candidate,
                (candidate_event, *suffix),
                extended,
                out,
            )

    def _bind(
        self,
        event: Event,
        bindings: dict[int, object],
        position: int,
    ) -> dict[int, object] | None:
        """Check equivalence chains for ``event`` at ``position``.

        Returns the bindings extended with any newly fixed chain values,
        or None when the event conflicts with an existing binding.
        """
        if not self._equivalences:
            return bindings
        extended = bindings
        event_type = event.event_type
        for index, predicate in enumerate(self._equivalences):
            attribute = predicate.attribute_for(event_type)
            if attribute is None:
                continue
            value = event.get(attribute)
            bound = extended.get(index, _UNBOUND)
            if bound is _UNBOUND:
                if extended is bindings:
                    extended = dict(bindings)
                extended[index] = value
            elif bound != value:
                return None
        return extended

    # ----- negation post-filter ---------------------------------------------

    def negation_ok(self, match: Match) -> bool:
        """Whether the negation guards pass for a constructed match.

        Deferred-mode callers re-run this over their retained matches at
        every output; the verdict is stable because guard intervals lie
        entirely in the past once the match exists.
        """
        return self._negation_ok(match)

    def _negation_ok(self, match: Match) -> bool:
        for guarded, negated_types in self._negations.items():
            low = match[guarded - 1].ts
            high = match[guarded].ts
            for name in negated_types:
                if self._negative_logs[name].any_between(low, high):
                    return False
        return True

    # ----- introspection ------------------------------------------------------

    @property
    def live_entries(self) -> int:
        """Events currently held across all stacks."""
        return sum(len(stack) for stack in self._stacks)

    @property
    def live_negative_instances(self) -> int:
        return sum(len(log) for log in self._negative_logs.values())

    def stack_sizes(self) -> dict[str, int]:
        """Live entry count per pattern position (diagnostics)."""
        return {
            f"{index}:{stack.event_type}": len(stack)
            for index, stack in enumerate(self._stacks)
        }


class _Unbound:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<unbound>"


_UNBOUND = _Unbound()


def check_supported(query: Query) -> None:
    """Reject query shapes no engine in this library defines semantics for."""
    if query.pattern.length < 1:
        raise QueryError("empty pattern")
