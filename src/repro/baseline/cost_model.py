"""Analytical cost model of stack-based execution (paper Eq. 3).

For a pattern ``SEQ(E_1, ..., E_n)`` the CPU cost of the stack-based
evaluation per window is::

    C_q = sum_{i=0}^{n-1} |E_{i+1}| * prod_{j=0}^{i} |E_j| * Pt_{E_j, E_{j+1}}

where ``|E_i|`` is the number of instances of type ``E_i`` in a window
and ``Pt`` is the selectivity of the implicit time-order predicate
between adjacent types. Under uniform instance counts this collapses to
``|E|^n``: exponential in pattern length, polynomial in stream rate.
The benchmarks print this model next to the measured numbers so readers
can see the measured curves track the predicted asymptotics.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def stack_based_cost(
    instance_counts: Sequence[float],
    time_selectivity: float | Mapping[tuple[int, int], float] = 0.5,
) -> float:
    """Evaluate Eq. 3 for per-type instance counts within one window.

    Parameters
    ----------
    instance_counts:
        ``|E_1| ... |E_n|`` — expected instances of each pattern type
        per window.
    time_selectivity:
        Either a single selectivity applied to every adjacent pair, or
        a mapping from position pair ``(j, j+1)`` to its selectivity.
        ``0.5`` matches uniformly interleaved arrivals.

    >>> stack_based_cost([10, 10, 10], 1.0)
    1110.0
    """
    if not instance_counts:
        return 0.0

    def selectivity(j: int) -> float:
        if isinstance(time_selectivity, Mapping):
            return time_selectivity.get((j, j + 1), 1.0)
        return time_selectivity

    total = 0.0
    prefix_product = 1.0
    for i in range(len(instance_counts)):
        if i == 0:
            total += instance_counts[0]
            prefix_product = instance_counts[0]
            continue
        prefix_product *= selectivity(i - 1)
        total += instance_counts[i] * prefix_product
        prefix_product *= instance_counts[i]
    return total


def aseq_cost(instance_counts: Sequence[float]) -> float:
    """A-Seq's cost model: one counter update per relevant arrival.

    Under SEM the per-event work is the number of active START
    instances ``k``; per window this is ``sum(|E_i|) * O(k)``. This
    helper reports the event count (the O(1)-per-counter view used in
    the paper's linear-vs-polynomial comparison).
    """
    return float(sum(instance_counts))


def uniform_counts(rate_per_type: float, length: int) -> list[float]:
    """Convenience: ``length`` types, ``rate_per_type`` instances each."""
    return [rate_per_type] * length
