"""Per-position event stacks with rip pointers (paper Fig. 1).

Each positive position of the SEQ pattern owns an :class:`EventStack`.
A new event instance of position ``i``'s type is appended to stack
``i`` together with a *rip pointer*: the number of entries present in
stack ``i-1`` at insertion time. During DFS construction only the
entries below the pointer (i.e. those that arrived earlier) are
considered, which is what makes the stack evaluation avoid re-checking
time order pairwise.

Window purging removes expired entries from the front of each stack;
pointers are stored as *global* insertion counts so that purging does
not invalidate them — the usable range is recomputed from the purge
offset.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.events.event import Event


class StackEntry:
    """One event held in a stack, plus its rip pointer."""

    __slots__ = ("event", "rip")

    def __init__(self, event: Event, rip: int):
        self.event = event
        #: Global count of entries in the *previous* stack at insertion.
        self.rip = rip

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StackEntry({self.event!r}, rip={self.rip})"


class EventStack:
    """A FIFO-purged stack of events for one pattern position."""

    __slots__ = ("event_type", "_entries", "_purged")

    def __init__(self, event_type: str):
        self.event_type = event_type
        self._entries: deque[StackEntry] = deque()
        #: Number of entries removed from the front so far; converts
        #: global insertion counts into live deque indices.
        self._purged = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def total_inserted(self) -> int:
        """Global insertion count (monotone; never decreases on purge)."""
        return self._purged + len(self._entries)

    def push(self, event: Event, rip: int) -> StackEntry:
        """Append an event with its rip pointer into the previous stack."""
        entry = StackEntry(event, rip)
        self._entries.append(entry)
        return entry

    def purge_expired(self, now: int, window_ms: int) -> int:
        """Drop entries whose window has passed; returns how many."""
        dropped = 0
        entries = self._entries
        while entries and entries[0].event.ts + window_ms <= now:
            entries.popleft()
            dropped += 1
        self._purged += dropped
        return dropped

    def live_below(self, rip: int) -> Iterator[StackEntry]:
        """Iterate live entries whose global index is below ``rip``.

        These are exactly the entries that were already present when the
        pointing event arrived and that have not expired since.
        """
        upper = rip - self._purged
        if upper <= 0:
            return
        entries = self._entries
        upper = min(upper, len(entries))
        for index in range(upper):
            yield entries[index]

    def entries(self) -> Iterator[StackEntry]:
        """Iterate all live entries, oldest first."""
        return iter(self._entries)

    def newest(self) -> StackEntry | None:
        """The most recently pushed live entry, if any."""
        return self._entries[-1] if self._entries else None
