"""Brute-force enumeration oracle.

Ground truth for tests: enumerates every valid sequence match of a
query over a finite event history by exhaustive search and aggregates
it directly from the definitions in paper Sec. 2.1. Exponentially
expensive — only ever used on tiny streams inside the test suite.

Validity of a match ``(e_1, ..., e_n)`` at observation time ``now``:

* ``e_i.type`` equals the i-th positive pattern type;
* ``e_1.ts < e_2.ts < ... < e_n.ts`` (strict, per Eq. 1);
* window: ``e_1.ts > now - win`` (the START has not expired; since all
  events arrived by ``now`` this also implies the match fit inside one
  window when constructed);
* negation: no surviving instance of a negated type strictly between
  the guarded neighbours (Eq. 2);
* predicates: local filters applied at ingestion, equivalence chains
  satisfied across the match;
* GROUP BY: all positive events share the grouping attribute value and
  the result is reported per value.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.errors import PredicateError
from repro.events.event import Event
from repro.query.ast import AggKind, Query
from repro.query.predicates import (
    EquivalencePredicate,
    local_filter,
)

Match = tuple[Event, ...]


def _surviving(events: Sequence[Event], query: Query) -> list[Event]:
    """Apply the ingestion-time local predicate filter."""
    accepts = local_filter(query.predicates)
    relevant = query.relevant_types
    return [
        e for e in events if e.event_type in relevant and accepts(e)
    ]


def enumerate_matches(
    events: Sequence[Event],
    query: Query,
    now: int | None = None,
) -> list[Match]:
    """All matches of ``query`` over ``events`` valid at time ``now``.

    ``now`` defaults to the latest event timestamp. GROUP BY queries
    return the union over every group (use :class:`BruteForceOracle`
    for per-group aggregates).
    """
    if now is None:
        # Observation time defaults to the latest arrival of *any* type:
        # windows slide on every event, relevant or not.
        now = max((e.ts for e in events), default=0)
    history = _surviving(events, query)
    history = [e for e in history if e.ts <= now]
    if query.group_by is None:
        return _enumerate_partition(history, query, now)
    matches: list[Match] = []
    for _, group_events in _group(history, query).items():
        matches.extend(_enumerate_partition(group_events, query, now))
    return matches


def _group(
    history: Sequence[Event], query: Query
) -> dict[Any, list[Event]]:
    """Partition events by the GROUP BY attribute.

    Negated-type events lacking the attribute are broadcast into every
    partition (they invalidate globally).
    """
    attribute = query.group_by
    assert attribute is not None
    negated = set(query.pattern.negated_types)
    groups: dict[Any, list[Event]] = {}
    broadcast: list[Event] = []
    for event in history:
        if attribute in event:
            groups.setdefault(event[attribute], []).append(event)
        elif event.event_type in negated:
            broadcast.append(event)
        else:
            raise PredicateError(
                f"event of type {event.event_type!r} lacks GROUP BY "
                f"attribute {attribute!r}"
            )
    if broadcast:
        for group_events in groups.values():
            merged = sorted(
                group_events + broadcast, key=lambda e: (e.ts, e.seq)
            )
            group_events[:] = merged
    return groups


def _enumerate_partition(
    history: Sequence[Event], query: Query, now: int
) -> list[Match]:
    pattern = query.pattern
    alternatives = pattern.alternatives
    negations = pattern.negations
    window = query.window
    equivalences = [
        p for p in query.predicates if isinstance(p, EquivalencePredicate)
    ]
    by_type: dict[str, list[Event]] = {}
    for event in history:
        by_type.setdefault(event.event_type, []).append(event)
    # Candidates per positive position (choice positions merge their
    # alternatives' events back into timestamp order).
    candidates: list[list[Event]] = []
    for names in alternatives:
        if len(names) == 1:
            candidates.append(by_type.get(names[0], []))
        else:
            merged = [e for name in names for e in by_type.get(name, [])]
            merged.sort(key=lambda e: (e.ts, e.seq))
            candidates.append(merged)

    def negated_between(names: Iterable[str], low: int, high: int) -> bool:
        for name in names:
            for candidate in by_type.get(name, ()):  # tiny lists in tests
                if low < candidate.ts < high:
                    return True
        return False

    def equivalence_ok(match: Sequence[Event]) -> bool:
        for predicate in equivalences:
            value: Any = _UNSET
            for event in match:
                attribute = predicate.attribute_for(event.event_type)
                if attribute is None:
                    continue
                current = event.get(attribute)
                if value is _UNSET:
                    value = current
                elif value != current:
                    return False
        return True

    results: list[Match] = []
    kleene = pattern.kleene_positions
    # With Kleene repetitions a match's tuple indexes no longer line up
    # with pattern positions; negation adjacent to Kleene is rejected at
    # validation, and the guard anchors below track the *events* at the
    # guarded neighbours.

    def finish(chosen: list[Event], anchors: list[Event]) -> None:
        match = tuple(chosen)
        for guarded, names in negations.items():
            if negated_between(
                names, anchors[guarded - 1].ts, anchors[guarded].ts
            ):
                return
        if equivalence_ok(match):
            results.append(match)

    def extend(
        position: int, chosen: list[Event], anchors: list[Event]
    ) -> None:
        if position == len(candidates):
            finish(chosen, anchors)
            return
        minimum_ts = chosen[-1].ts if chosen else None
        for event in candidates[position]:  # in ts order
            if minimum_ts is not None and event.ts <= minimum_ts:
                continue
            if position == 0 and window is not None:
                if event.ts <= now - window.size_ms:
                    continue
            chosen.append(event)
            anchors.append(event)
            if position in kleene:
                extend_repetition(position, chosen, anchors)
            else:
                extend(position + 1, chosen, anchors)
            anchors.pop()
            chosen.pop()

    def extend_repetition(
        position: int, chosen: list[Event], anchors: list[Event]
    ) -> None:
        """The repetition holds >= 1 events; either stop or absorb more."""
        extend(position + 1, chosen, anchors)
        last_ts = chosen[-1].ts
        for event in candidates[position]:
            if event.ts <= last_ts:
                continue
            chosen.append(event)
            extend_repetition(position, chosen, anchors)
            chosen.pop()

    extend(0, [], [])
    return results


class _Unset:
    __slots__ = ()


_UNSET = _Unset()


class BruteForceOracle:
    """Aggregates a query by brute-force match enumeration."""

    def __init__(self, query: Query):
        self.query = query

    def aggregate(
        self, events: Sequence[Event], now: int | None = None
    ) -> Any:
        """The query's aggregate over ``events`` at observation time ``now``.

        Returns a scalar, or a ``{group_key: value}`` dict for GROUP BY
        queries (containing every group that has ever had an event).
        """
        if now is None:
            now = max((e.ts for e in events), default=0)
        history = _surviving(events, self.query)
        history = [e for e in history if e.ts <= now]
        if self.query.group_by is None:
            matches = _enumerate_partition(history, self.query, now)
            return self._apply(matches)
        result: dict[Any, Any] = {}
        for key, group_events in _group(history, self.query).items():
            matches = _enumerate_partition(group_events, self.query, now)
            result[key] = self._apply(matches)
        return result

    def _apply(self, matches: Sequence[Match]) -> Any:
        aggregate = self.query.aggregate
        if aggregate.kind is AggKind.COUNT:
            return len(matches)
        position = self.query.pattern.position_of_event_type(
            aggregate.event_type
        )
        values = [m[position][aggregate.attribute] for m in matches]
        if aggregate.kind is AggKind.SUM:
            return sum(values) if values else 0
        if aggregate.kind is AggKind.AVG:
            return sum(values) / len(values) if values else None
        if aggregate.kind is AggKind.MAX:
            return max(values) if values else None
        return min(values) if values else None
