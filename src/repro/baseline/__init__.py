"""State-of-the-art comparators: stack-based (SASE-style) two-step CEP.

This package implements the paper's Sec. 2.2 baseline: per-position
event stacks with rip pointers, DFS sequence construction on trigger
arrivals, post-filter negation, and aggregation applied as a second
step over the materialized matches. It also houses the brute-force
oracle used as ground truth in tests, and the analytical cost model of
Eq. 3.
"""

from repro.baseline.cost_model import stack_based_cost
from repro.baseline.matcher import StackMatcher
from repro.baseline.oracle import BruteForceOracle, enumerate_matches
from repro.baseline.twostep import TwoStepEngine

__all__ = [
    "BruteForceOracle",
    "StackMatcher",
    "TwoStepEngine",
    "enumerate_matches",
    "stack_based_cost",
]
