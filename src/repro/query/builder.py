"""Fluent programmatic query construction.

>>> from repro.query import seq
>>> query = (
...     seq("Kindle", "KindleCase", "Stylus")
...     .where_equal("userId", "Kindle", "KindleCase", "Stylus")
...     .count()
...     .within(hours=1)
...     .build()
... )
>>> query.window.size_ms
3600000
"""

from __future__ import annotations

from typing import Any

from repro.errors import QueryError
from repro.query.ast import AggKind, Aggregate, Query, SeqPattern, Window
from repro.query.predicates import (
    AttributeComparison,
    EquivalencePredicate,
    LocalPredicate,
    Predicate,
)
from repro.query.validate import validate_query


def seq(*names: str) -> "QueryBuilder":
    """Start building a query for ``SEQ(*names)``.

    Prefix a type name with ``!`` to negate it: ``seq("A", "!C", "B")``.
    """
    return QueryBuilder(SeqPattern.of(*names))


class QueryBuilder:
    """Accumulates query clauses and produces a validated :class:`Query`."""

    def __init__(self, pattern: SeqPattern):
        self._pattern = pattern
        self._predicates: list[Predicate] = []
        self._group_by: str | None = None
        self._aggregate = Aggregate.count()
        self._window: Window | None = None
        self._name: str | None = None

    # ----- WHERE ----------------------------------------------------------

    def where(self, predicate: Predicate) -> "QueryBuilder":
        """Attach an already-built predicate."""
        self._predicates.append(predicate)
        return self

    def where_local(
        self, event_type: str, attribute: str, op: str, value: Any
    ) -> "QueryBuilder":
        """Attach ``<event_type>.<attribute> <op> <value>``."""
        self._predicates.append(
            LocalPredicate(event_type, attribute, op, value)
        )
        return self

    def where_attrs(
        self, event_type: str, left: str, op: str, right: str
    ) -> "QueryBuilder":
        """Attach an intra-event comparison of two attributes."""
        self._predicates.append(
            AttributeComparison(event_type, left, op, right)
        )
        return self

    def where_equal(
        self, attribute: str, *event_types: str
    ) -> "QueryBuilder":
        """Attach the chain ``T1.attribute = T2.attribute = ...``.

        When no event types are given, the chain covers every positive
        type of the pattern (the common "same user across the whole
        pattern" idiom).
        """
        types = event_types or self._pattern.positive_types
        if len(types) < 2:
            raise QueryError(
                "an equivalence predicate needs at least two event types"
            )
        self._predicates.append(EquivalencePredicate.on(attribute, *types))
        return self

    # ----- GROUP BY / AGG / WITHIN -----------------------------------------

    def group_by(self, attribute: str) -> "QueryBuilder":
        self._group_by = attribute
        return self

    def count(self) -> "QueryBuilder":
        self._aggregate = Aggregate.count()
        return self

    def sum(self, event_type: str, attribute: str) -> "QueryBuilder":
        self._aggregate = Aggregate(AggKind.SUM, event_type, attribute)
        return self

    def avg(self, event_type: str, attribute: str) -> "QueryBuilder":
        self._aggregate = Aggregate(AggKind.AVG, event_type, attribute)
        return self

    def max(self, event_type: str, attribute: str) -> "QueryBuilder":
        self._aggregate = Aggregate(AggKind.MAX, event_type, attribute)
        return self

    def min(self, event_type: str, attribute: str) -> "QueryBuilder":
        self._aggregate = Aggregate(AggKind.MIN, event_type, attribute)
        return self

    def within(
        self,
        ms: int = 0,
        seconds: float = 0,
        minutes: float = 0,
        hours: float = 0,
    ) -> "QueryBuilder":
        """Set the sliding window; the components are added together."""
        total = int(
            ms + seconds * 1000 + minutes * 60_000 + hours * 3_600_000
        )
        self._window = Window(total)
        return self

    def named(self, name: str) -> "QueryBuilder":
        self._name = name
        return self

    # ----- finalize ---------------------------------------------------------

    def build(self) -> Query:
        """Validate and return the immutable query."""
        query = Query(
            pattern=self._pattern,
            aggregate=self._aggregate,
            window=self._window,
            predicates=tuple(self._predicates),
            group_by=self._group_by,
            name=self._name,
        )
        validate_query(query)
        return query
