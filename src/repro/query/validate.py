"""Semantic validation of queries.

The parser and builder both funnel through :func:`validate_query` so
that a query object, however constructed, satisfies the invariants the
runtime engines rely on.
"""

from __future__ import annotations

from repro.errors import QueryError
from repro.query.ast import AggKind, Query
from repro.query.predicates import EquivalencePredicate, Predicate


def validate_query(query: Query) -> None:
    """Raise :class:`QueryError` when ``query`` is semantically invalid."""
    _validate_pattern_types(query)
    _validate_aggregate(query)
    for predicate in query.predicates:
        _validate_predicate(query, predicate)


def _validate_pattern_types(query: Query) -> None:
    positive_events = query.pattern.all_positive_event_types
    for negated in query.pattern.negated_types:
        if negated in positive_events:
            raise QueryError(
                f"type {negated!r} appears both positively and negated; "
                f"the paper's dialect keeps those roles disjoint"
            )


def _validate_aggregate(query: Query) -> None:
    aggregate = query.aggregate
    if aggregate.kind is AggKind.COUNT:
        return
    if query.pattern.has_kleene:
        raise QueryError(
            "Kleene patterns support AGG COUNT only; value aggregates "
            "over repetitions need per-repetition semantics this "
            "library does not define"
        )
    assert aggregate.event_type is not None
    # Raises QueryError when absent or ambiguous.
    query.pattern.position_of_event_type(aggregate.event_type)


def _validate_predicate(query: Query, predicate: Predicate) -> None:
    known = query.relevant_types
    for event_type in predicate.event_types:
        if event_type not in known:
            raise QueryError(
                f"predicate {predicate} references type {event_type!r} "
                f"which is not part of {query.pattern}"
            )
    if isinstance(predicate, EquivalencePredicate):
        negated = set(query.pattern.negated_types)
        for event_type in predicate.event_types:
            if event_type in negated:
                raise QueryError(
                    f"equivalence predicate {predicate} may not constrain "
                    f"negated type {event_type!r}"
                )
