"""Abstract syntax for CEP aggregation queries.

A :class:`Query` bundles the pieces of the paper's query template:

* ``PATTERN`` — a :class:`SeqPattern` of positive and negated event types;
* ``WHERE`` — predicates (see :mod:`repro.query.predicates`);
* ``GROUP BY`` — an attribute name;
* ``AGG`` — an :class:`Aggregate` (COUNT/SUM/AVG/MAX/MIN);
* ``WITHIN`` — a :class:`Window` in milliseconds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Sequence, TYPE_CHECKING

from repro.errors import QueryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.query.predicates import Predicate


@dataclass(frozen=True)
class PositiveType:
    """A positive position of a SEQ pattern.

    ``name`` is the canonical label; a disjunction of event types (an
    extension beyond the paper: any one of several types fills the
    position) is written ``"A|B"``. :attr:`alternatives` lists the
    concrete event types the position accepts.
    """

    name: str

    def __post_init__(self) -> None:
        alternatives = self.alternatives
        if not all(alternatives):
            raise QueryError(f"malformed type label {self.name!r}")
        if len(set(alternatives)) != len(alternatives):
            raise QueryError(
                f"duplicate alternative in type label {self.name!r}"
            )

    @property
    def alternatives(self) -> tuple[str, ...]:
        """Concrete event types this position accepts."""
        return tuple(self.name.split("|"))

    @property
    def is_choice(self) -> bool:
        return "|" in self.name

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class KleeneType:
    """A Kleene-plus position: one or more instances of an event type.

    ``SEQ(A, B+, C)`` matches an A, then any non-empty increasing
    subsequence of B instances, then a C. An extension beyond the paper
    in the direction of its follow-on work (GRETA): the prefix-counter
    update becomes ``count' = 2*count + count_prev`` — each existing
    partial match may or may not absorb the new instance, and a fresh
    one may start from the previous prefix. Still O(1) per arrival.
    """

    name: str

    @property
    def alternatives(self) -> tuple[str, ...]:
        return (self.name,)

    def __str__(self) -> str:
        return f"{self.name}+"


@dataclass(frozen=True)
class NegatedType:
    """A negated (``!``) event type between two positive positions."""

    name: str

    def __str__(self) -> str:
        return f"!{self.name}"


PatternElement = PositiveType | KleeneType | NegatedType


@dataclass(frozen=True)
class SeqPattern:
    """An ordered SEQ pattern such as ``SEQ(A, B, !C, D)``.

    The canonical representation keeps the full element tuple; the
    derived views used by every engine are:

    * :attr:`positive_types` — the positive types in order;
    * :attr:`negations` — a map from *guarded position* to the negated
      type names that must not occur between positive positions
      ``guarded_position - 1`` and ``guarded_position``.
    """

    elements: tuple[PatternElement, ...]

    def __post_init__(self) -> None:
        if not self.elements:
            raise QueryError("a SEQ pattern needs at least one event type")
        if isinstance(self.elements[0], NegatedType):
            raise QueryError(
                "negation cannot lead a pattern: there is no earlier positive "
                "event to bound the non-occurrence interval"
            )
        if isinstance(self.elements[-1], NegatedType):
            raise QueryError(
                "negation cannot end a pattern: the non-occurrence interval "
                "would extend into the unbounded future"
            )
        if len(self.positive_types) < 1:
            raise QueryError("a SEQ pattern needs at least one positive type")
        if isinstance(self.elements[0], KleeneType):
            raise QueryError(
                "a Kleene position cannot open a pattern; anchor it "
                "behind at least one plain positive type"
            )
        previous_negated = False
        previous_kleene = False
        for element in self.elements:
            if isinstance(element, NegatedType):
                if previous_negated:
                    raise QueryError(
                        "adjacent negations are ambiguous; combine them into "
                        "distinct guarded positions"
                    )
                if previous_kleene:
                    raise QueryError(
                        "negation adjacent to a Kleene position is "
                        "ambiguous (which repetition bounds the interval?)"
                    )
                previous_negated = True
                previous_kleene = False
            else:
                if previous_negated and isinstance(element, KleeneType):
                    raise QueryError(
                        "negation adjacent to a Kleene position is "
                        "ambiguous (which repetition bounds the interval?)"
                    )
                previous_negated = False
                previous_kleene = isinstance(element, KleeneType)

    @classmethod
    def of(cls, *names: str) -> "SeqPattern":
        """Build a pattern from type names.

        Prefix a name with ``!`` to negate it, suffix with ``+`` for a
        Kleene-plus position, and join names with ``|`` for a choice.

        >>> SeqPattern.of("A", "B", "!C", "D").negations
        {2: ('C',)}
        >>> str(SeqPattern.of("A", "B+", "C"))
        'SEQ(A, B+, C)'
        """
        elements: list[PatternElement] = []
        for name in names:
            if name.startswith("!"):
                elements.append(NegatedType(name[1:]))
            elif name.endswith("+"):
                elements.append(KleeneType(name[:-1]))
            else:
                elements.append(PositiveType(name))
        return cls(tuple(elements))

    @property
    def positive_types(self) -> tuple[str, ...]:
        """Positive position labels in pattern order.

        For plain patterns these are the event type names; a choice
        position keeps its ``"A|B"`` label and a Kleene position its
        ``"B+"`` label — use :attr:`alternatives` when matching events.
        """
        return tuple(
            str(e)
            for e in self.elements
            if isinstance(e, (PositiveType, KleeneType))
        )

    @property
    def alternatives(self) -> tuple[tuple[str, ...], ...]:
        """Concrete event types accepted at each positive position."""
        return tuple(
            e.alternatives
            for e in self.elements
            if isinstance(e, (PositiveType, KleeneType))
        )

    @property
    def kleene_positions(self) -> frozenset[int]:
        """Positive positions that are Kleene-plus repetitions."""
        positions = []
        index = 0
        for element in self.elements:
            if isinstance(element, (PositiveType, KleeneType)):
                if isinstance(element, KleeneType):
                    positions.append(index)
                index += 1
        return frozenset(positions)

    @property
    def has_kleene(self) -> bool:
        return any(isinstance(e, KleeneType) for e in self.elements)

    @property
    def all_positive_event_types(self) -> frozenset[str]:
        """Every concrete event type any positive position accepts."""
        return frozenset(
            name for names in self.alternatives for name in names
        )

    @property
    def start_alternatives(self) -> tuple[str, ...]:
        """Event types that open a match (the START position)."""
        return self.alternatives[0]

    @property
    def trigger_alternatives(self) -> tuple[str, ...]:
        """Event types that complete a match (the TRIG position)."""
        return self.alternatives[-1]

    def position_of_event_type(self, event_type: str) -> int:
        """The unique positive position accepting ``event_type``.

        Raises :class:`QueryError` when the type is absent or ambiguous
        (used to resolve value-aggregate targets).
        """
        positions = [
            index
            for index, names in enumerate(self.alternatives)
            if event_type in names
        ]
        if not positions:
            raise QueryError(
                f"type {event_type!r} does not appear in {self}"
            )
        if len(positions) > 1:
            raise QueryError(
                f"type {event_type!r} appears at several positions of "
                f"{self}; the reference is ambiguous"
            )
        return positions[0]

    @property
    def negations(self) -> dict[int, tuple[str, ...]]:
        """Map guarded positive position -> negated type names before it.

        For ``SEQ(A, B, !C, D)`` the result is ``{2: ("C",)}``: no ``C``
        instance may occur between the matched ``B`` (position 1) and the
        matched ``D`` (position 2).
        """
        result: dict[int, tuple[str, ...]] = {}
        position = 0
        pending: list[str] = []
        for element in self.elements:
            if isinstance(element, NegatedType):
                pending.append(element.name)
            else:
                if pending:
                    result[position] = tuple(pending)
                    pending = []
                position += 1
        return result

    @property
    def negated_types(self) -> tuple[str, ...]:
        """All negated type names, in pattern order."""
        return tuple(
            e.name for e in self.elements if isinstance(e, NegatedType)
        )

    @property
    def length(self) -> int:
        """Number of positive positions (the pattern length ``l``)."""
        return len(self.positive_types)

    @property
    def has_negation(self) -> bool:
        return any(isinstance(e, NegatedType) for e in self.elements)

    def prefix(self, length: int) -> "SeqPattern":
        """The prefix pattern covering the first ``length`` positive types.

        Negations guarded by a position inside the prefix are kept; a
        trailing negation (one whose guarded position falls outside the
        prefix) is dropped, because the prefix ends at a positive type.
        """
        if not 1 <= length <= self.length:
            raise QueryError(
                f"prefix length {length} out of range 1..{self.length}"
            )
        elements: list[PatternElement] = []
        seen_positive = 0
        for element in self.elements:
            if isinstance(element, (PositiveType, KleeneType)):
                elements.append(element)
                seen_positive += 1
                if seen_positive == length:
                    break
            else:
                elements.append(element)
        # A pattern cannot end in a negation; drop any trailing one.
        while elements and isinstance(elements[-1], NegatedType):
            elements.pop()
        return SeqPattern(tuple(elements))

    def substring(self, start: int, end: int) -> "SeqPattern":
        """Positive positions ``start`` (inclusive) to ``end`` (exclusive).

        Negations that are guarded by a position strictly inside the
        range travel with the substring; boundary negations are rejected
        because chop plans (Sec. 4.2) only cut between purely positive
        neighbours.
        """
        if not (0 <= start < end <= self.length):
            raise QueryError(
                f"substring range [{start}, {end}) out of bounds for a "
                f"pattern of length {self.length}"
            )
        negations = self.negations
        if start in negations and start > 0:
            raise QueryError(
                f"cannot cut the pattern at position {start}: a negation "
                f"guards that boundary"
            )
        if end in negations and end < self.length:
            raise QueryError(
                f"cannot cut the pattern at position {end}: a negation "
                f"guards that boundary"
            )
        positionals = [
            e
            for e in self.elements
            if isinstance(e, (PositiveType, KleeneType))
        ]
        elements: list[PatternElement] = []
        for position in range(start, end):
            for negated in negations.get(position, ()):
                if position > start:
                    elements.append(NegatedType(negated))
            elements.append(positionals[position])
        return SeqPattern(tuple(elements))

    def __iter__(self) -> Iterator[PatternElement]:
        return iter(self.elements)

    def __str__(self) -> str:
        inner = ", ".join(str(e) for e in self.elements)
        return f"SEQ({inner})"


class AggKind(enum.Enum):
    """Aggregation functions supported by A-Seq (paper Sec. 5)."""

    COUNT = "COUNT"
    SUM = "SUM"
    AVG = "AVG"
    MAX = "MAX"
    MIN = "MIN"


@dataclass(frozen=True)
class Aggregate:
    """An AGG clause.

    ``COUNT`` takes no target. The value aggregates name one positive
    event type and one of its attributes, e.g. ``SUM(C.weight)``.
    """

    kind: AggKind
    event_type: str | None = None
    attribute: str | None = None

    def __post_init__(self) -> None:
        if self.kind is AggKind.COUNT:
            if self.event_type is not None or self.attribute is not None:
                raise QueryError("COUNT does not take a target attribute")
        else:
            if self.event_type is None or self.attribute is None:
                raise QueryError(
                    f"{self.kind.value} needs a target such as "
                    f"{self.kind.value}(C.weight)"
                )

    @classmethod
    def count(cls) -> "Aggregate":
        return cls(AggKind.COUNT)

    def __str__(self) -> str:
        if self.kind is AggKind.COUNT:
            return "COUNT"
        return f"{self.kind.value}({self.event_type}.{self.attribute})"


@dataclass(frozen=True)
class Window:
    """A WITHIN clause: sliding window size in milliseconds.

    The window slides on every arrival; a match whose START instance
    arrived at ``t0`` contributes to results at times ``t < t0 + size_ms``
    (paper Sec. 3.2, Example 3).
    """

    size_ms: int

    def __post_init__(self) -> None:
        if self.size_ms <= 0:
            raise QueryError("window size must be positive")

    def expiry_of(self, arrival_ts: int) -> int:
        """Timestamp at which an event arriving at ``arrival_ts`` expires."""
        return arrival_ts + self.size_ms

    def __str__(self) -> str:
        return f"WITHIN {self.size_ms}ms"


@dataclass(frozen=True)
class Query:
    """A complete CEP aggregation query."""

    pattern: SeqPattern
    aggregate: Aggregate = field(default_factory=Aggregate.count)
    window: Window | None = None
    predicates: tuple["Predicate", ...] = ()
    group_by: str | None = None
    name: str | None = None

    @property
    def relevant_types(self) -> frozenset[str]:
        """Every event type the query reacts to (positive and negated)."""
        return self.pattern.all_positive_event_types | frozenset(
            self.pattern.negated_types
        )

    def __str__(self) -> str:
        parts = [f"PATTERN {self.pattern}"]
        if self.predicates:
            clauses = " AND ".join(str(p) for p in self.predicates)
            parts.append(f"WHERE {clauses}")
        if self.group_by:
            parts.append(f"GROUP BY {self.group_by}")
        parts.append(f"AGG {self.aggregate}")
        if self.window:
            parts.append(str(self.window))
        return "\n".join(parts)


def patterns_equal(a: SeqPattern, b: SeqPattern) -> bool:
    """Structural pattern equality (used by the multi-query planner)."""
    return a.elements == b.elements


def common_prefix_length(a: SeqPattern, b: SeqPattern) -> int:
    """Longest shared prefix (in pattern elements), in positive positions.

    Two patterns share a prefix only if the full element sequences —
    including any interleaved negations — agree.
    """
    shared_elements = 0
    for ea, eb in zip(a.elements, b.elements):
        if ea != eb:
            break
        shared_elements += 1
    return sum(
        1
        for element in a.elements[:shared_elements]
        if isinstance(element, (PositiveType, KleeneType))
    )


def positive_subsequences(pattern: SeqPattern) -> Sequence[tuple[str, ...]]:
    """All contiguous positive-type substrings of length >= 2.

    Helper for the multi-query planner's common-substring search.
    """
    positives = pattern.positive_types
    result = []
    for start in range(len(positives)):
        for end in range(start + 2, len(positives) + 1):
            result.append(positives[start:end])
    return result
