"""Text parser for the paper's CEP aggregation query dialect.

Grammar (clauses may appear on one line or several; keywords are
case-insensitive)::

    query      := pattern [where] [group_by] [agg] [within]
    pattern    := "PATTERN" ["<"] "SEQ" "(" element ("," element)* ")" [">"]
    element    := "!" IDENT                      -- negation
                | atom ("|" atom)*               -- choice position
                | atom "+"                       -- Kleene-plus position
    atom       := IDENT | "(" IDENT ("|" IDENT)* ")"
    where      := "WHERE" ["<"] condition ("AND" condition)* [">"]
    condition  := qualified (("=" qualified)+            -- equivalence chain
                 | OP (constant | qualified))            -- local predicate
    qualified  := IDENT "." IDENT
    group_by   := "GROUP" "BY" ["<"] IDENT [">"]
    agg        := "AGG" ["<"] (COUNT | SUM|AVG|MAX|MIN "(" qualified ")") [">"]
    within     := "WITHIN" ["<"] NUMBER UNIT [">"]

Angle brackets around clause bodies are accepted because the paper
writes queries both ways.
"""

from __future__ import annotations

import re
from typing import Any

from repro.errors import ParseError
from repro.query.ast import (
    AggKind,
    Aggregate,
    KleeneType,
    NegatedType,
    PatternElement,
    PositiveType,
    Query,
    SeqPattern,
    Window,
)
from repro.query.predicates import (
    AttributeComparison,
    EquivalencePredicate,
    LocalPredicate,
    Predicate,
)
from repro.query.validate import validate_query

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><=|>=|!=|==|=|<|>|!|\(|\)|,|\.|\||\+)
    """,
    re.VERBOSE,
)

_UNITS_MS = {
    "ms": 1,
    "msec": 1,
    "millisecond": 1,
    "milliseconds": 1,
    "s": 1000,
    "sec": 1000,
    "second": 1000,
    "seconds": 1000,
    "min": 60_000,
    "minute": 60_000,
    "minutes": 60_000,
    "h": 3_600_000,
    "hour": 3_600_000,
    "hours": 3_600_000,
}

_KEYWORDS = {"PATTERN", "SEQ", "WHERE", "GROUP", "BY", "AGG", "WITHIN", "AND"}
_AGG_KINDS = {k.value for k in AggKind}


class _Token:
    __slots__ = ("kind", "text", "position")

    def __init__(self, kind: str, text: str, position: int):
        self.kind = kind
        self.text = text
        self.position = position

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Token({self.kind}, {self.text!r})"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r}", position
            )
        position = match.end()
        kind = match.lastgroup or ""
        if kind == "ws":
            continue
        tokens.append(_Token(kind, match.group(), match.start()))
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, text: str):
        self._text = text
        self._tokens = _tokenize(text)
        self._index = 0

    # ----- token helpers -------------------------------------------------

    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of query", len(self._text))
        self._index += 1
        return token

    def _at_keyword(self, *keywords: str) -> bool:
        token = self._peek()
        return (
            token is not None
            and token.kind == "ident"
            and token.text.upper() in keywords
        )

    def _expect_keyword(self, keyword: str) -> None:
        token = self._next()
        if token.kind != "ident" or token.text.upper() != keyword:
            raise ParseError(
                f"expected {keyword}, found {token.text!r}", token.position
            )

    def _expect_op(self, op: str) -> None:
        token = self._next()
        if token.kind != "op" or token.text != op:
            raise ParseError(
                f"expected {op!r}, found {token.text!r}", token.position
            )

    def _expect_ident(self) -> str:
        token = self._next()
        if token.kind != "ident":
            raise ParseError(
                f"expected an identifier, found {token.text!r}",
                token.position,
            )
        if token.text.upper() in _KEYWORDS:
            raise ParseError(
                f"keyword {token.text!r} cannot be used as an identifier",
                token.position,
            )
        return token.text

    def _peek_op(self, op: str) -> bool:
        token = self._peek()
        return token is not None and token.kind == "op" and token.text == op

    def _parse_type_atom(self) -> str:
        """One event type name, optionally parenthesized (``(A|B)``)."""
        if self._peek_op("("):
            self._index += 1
            names = [self._expect_ident()]
            while self._peek_op("|"):
                self._index += 1
                names.append(self._expect_ident())
            self._expect_op(")")
            return "|".join(names)
        return self._expect_ident()

    def _skip_optional_angle(self, opening: bool) -> bool:
        token = self._peek()
        wanted = "<" if opening else ">"
        if token is not None and token.kind == "op" and token.text == wanted:
            self._index += 1
            return True
        return False

    # ----- clause parsers -------------------------------------------------

    def parse(self, name: str | None) -> Query:
        pattern = self._parse_pattern()
        predicates: tuple[Predicate, ...] = ()
        group_by: str | None = None
        aggregate = Aggregate.count()
        window: Window | None = None

        while self._peek() is not None:
            if self._at_keyword("WHERE"):
                predicates = self._parse_where()
            elif self._at_keyword("GROUP"):
                group_by = self._parse_group_by()
            elif self._at_keyword("AGG"):
                aggregate = self._parse_agg()
            elif self._at_keyword("WITHIN"):
                window = self._parse_within()
            else:
                token = self._peek()
                assert token is not None
                raise ParseError(
                    f"unexpected token {token.text!r}", token.position
                )

        query = Query(
            pattern=pattern,
            aggregate=aggregate,
            window=window,
            predicates=predicates,
            group_by=group_by,
            name=name,
        )
        validate_query(query)
        return query

    def _parse_pattern(self) -> SeqPattern:
        self._expect_keyword("PATTERN")
        bracketed = self._skip_optional_angle(opening=True)
        self._expect_keyword("SEQ")
        self._expect_op("(")
        elements: list[PatternElement] = []
        while True:
            token = self._peek()
            negated = False
            if token is not None and token.kind == "op" and token.text == "!":
                self._index += 1
                negated = True
            names = [self._parse_type_atom()]
            while self._peek_op("|"):
                self._index += 1
                names.append(self._parse_type_atom())
            kleene = False
            if self._peek_op("+"):
                self._index += 1
                kleene = True
            if negated:
                if len(names) > 1 or kleene:
                    raise ParseError(
                        "negation applies to a single plain event type; "
                        "write one !T per negated type"
                    )
                elements.append(NegatedType(names[0]))
            elif kleene:
                if len(names) > 1 or "|" in names[0]:
                    raise ParseError(
                        "Kleene-plus applies to a single event type"
                    )
                elements.append(KleeneType(names[0]))
            else:
                elements.append(PositiveType("|".join(names)))
            token = self._next()
            if token.kind == "op" and token.text == ",":
                continue
            if token.kind == "op" and token.text == ")":
                break
            raise ParseError(
                f"expected ',' or ')', found {token.text!r}", token.position
            )
        if bracketed:
            self._skip_optional_angle(opening=False)
        return SeqPattern(tuple(elements))

    def _parse_qualified(self) -> tuple[str, str]:
        event_type = self._expect_ident()
        self._expect_op(".")
        attribute = self._expect_ident()
        return event_type, attribute

    def _parse_constant(self) -> Any:
        token = self._next()
        if token.kind == "number":
            text = token.text
            return float(text) if "." in text else int(text)
        if token.kind == "string":
            return token.text[1:-1]
        if token.kind == "ident" and token.text.upper() in ("TRUE", "FALSE"):
            return token.text.upper() == "TRUE"
        raise ParseError(
            f"expected a constant, found {token.text!r}", token.position
        )

    def _parse_condition(self) -> Predicate:
        left_type, left_attr = self._parse_qualified()
        token = self._next()
        if token.kind != "op" or token.text not in (
            "=", "==", "!=", "<", "<=", ">", ">=",
        ):
            raise ParseError(
                f"expected a comparison operator, found {token.text!r}",
                token.position,
            )
        op = token.text
        # Decide whether the right-hand side is a qualified attribute
        # (possibly continuing an equivalence chain) or a constant.
        lookahead = self._peek()
        rhs_is_qualified = (
            lookahead is not None
            and lookahead.kind == "ident"
            and lookahead.text.upper() not in _KEYWORDS
            and self._index + 1 < len(self._tokens)
            and self._tokens[self._index + 1].text == "."
        )
        if not rhs_is_qualified:
            value = self._parse_constant()
            return LocalPredicate(left_type, left_attr, op, value)

        right_type, right_attr = self._parse_qualified()
        if op in ("=", "=="):
            terms = [(left_type, left_attr), (right_type, right_attr)]
            while True:
                nxt = self._peek()
                if nxt is None or nxt.kind != "op" or nxt.text not in ("=", "=="):
                    break
                self._index += 1
                terms.append(self._parse_qualified())
            if len(terms) > 2 or left_type != right_type:
                return EquivalencePredicate(tuple(terms))
            # Same type on both sides of one '=': an intra-event check.
            return AttributeComparison(left_type, left_attr, "=", right_attr)
        if left_type == right_type:
            return AttributeComparison(left_type, left_attr, op, right_attr)
        raise ParseError(
            f"cross-type comparison {left_type}.{left_attr} {op} "
            f"{right_type}.{right_attr} is not supported; only equality "
            f"chains correlate different types",
            token.position,
        )

    def _parse_where(self) -> tuple[Predicate, ...]:
        self._expect_keyword("WHERE")
        bracketed = self._skip_optional_angle(opening=True)
        predicates = [self._parse_condition()]
        while self._at_keyword("AND"):
            self._index += 1
            predicates.append(self._parse_condition())
        if bracketed:
            self._skip_optional_angle(opening=False)
        return tuple(predicates)

    def _parse_group_by(self) -> str:
        self._expect_keyword("GROUP")
        self._expect_keyword("BY")
        bracketed = self._skip_optional_angle(opening=True)
        attribute = self._expect_ident()
        if bracketed:
            self._skip_optional_angle(opening=False)
        return attribute

    def _parse_agg(self) -> Aggregate:
        self._expect_keyword("AGG")
        bracketed = self._skip_optional_angle(opening=True)
        token = self._next()
        if token.kind != "ident" or token.text.upper() not in _AGG_KINDS:
            raise ParseError(
                f"expected an aggregation function, found {token.text!r}",
                token.position,
            )
        kind = AggKind(token.text.upper())
        if kind is AggKind.COUNT:
            aggregate = Aggregate.count()
        else:
            self._expect_op("(")
            event_type, attribute = self._parse_qualified()
            self._expect_op(")")
            aggregate = Aggregate(kind, event_type, attribute)
        if bracketed:
            self._skip_optional_angle(opening=False)
        return aggregate

    def _parse_within(self) -> Window:
        self._expect_keyword("WITHIN")
        bracketed = self._skip_optional_angle(opening=True)
        token = self._next()
        if token.kind != "number":
            raise ParseError(
                f"expected a window size, found {token.text!r}",
                token.position,
            )
        amount = float(token.text)
        unit_token = self._next()
        unit = unit_token.text.lower() if unit_token.kind == "ident" else None
        if unit not in _UNITS_MS:
            raise ParseError(
                f"expected a time unit (ms/s/min/hour), found "
                f"{unit_token.text!r}",
                unit_token.position,
            )
        if bracketed:
            self._skip_optional_angle(opening=False)
        return Window(int(amount * _UNITS_MS[unit]))


def parse_workload(text: str) -> list[Query]:
    """Parse a workload file: named queries separated by semicolons.

    Each entry is ``<name>: <query>``; the name feeds the multi-query
    engines, which require named queries.

    >>> workload = parse_workload('''
    ...     Q1: PATTERN SEQ(VK, BK, VC) AGG COUNT WITHIN 1 hour;
    ...     Q2: PATTERN SEQ(VK, BK, VKF) AGG COUNT WITHIN 1 hour;
    ... ''')
    >>> [q.name for q in workload]
    ['Q1', 'Q2']
    """
    queries: list[Query] = []
    seen: set[str] = set()
    for entry in text.split(";"):
        entry = entry.strip()
        if not entry:
            continue
        name, separator, body = entry.partition(":")
        name = name.strip()
        if not separator or not name or any(c.isspace() for c in name):
            raise ParseError(
                f"workload entries look like '<name>: PATTERN ...'; got "
                f"{entry[:40]!r}"
            )
        if name in seen:
            raise ParseError(f"duplicate query name {name!r} in workload")
        seen.add(name)
        queries.append(parse_query(body, name=name))
    if not queries:
        raise ParseError("empty workload")
    return queries


def parse_query(text: str, name: str | None = None) -> Query:
    """Parse query text into a validated :class:`~repro.query.ast.Query`.

    >>> q = parse_query('''
    ...     PATTERN SEQ(Kindle, KindleCase, Stylus)
    ...     WHERE Kindle.userId = KindleCase.userId = Stylus.userId
    ...     AGG COUNT
    ...     WITHIN 1 hour
    ... ''')
    >>> q.pattern.positive_types
    ('Kindle', 'KindleCase', 'Stylus')
    >>> q.window.size_ms
    3600000
    """
    return _Parser(text).parse(name)
