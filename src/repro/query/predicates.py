"""WHERE-clause predicates.

Three predicate families cover the paper's Sec. 3.4:

* :class:`LocalPredicate` — one event type's attribute against a
  constant (``Kindle.model = 'touch'``). Evaluated at ingestion; failing
  events never reach the aggregation state.
* :class:`AttributeComparison` — two attributes of the *same* event
  instance (``TypePassword.value != TypePassword.username``). Also a
  local filter.
* :class:`EquivalencePredicate` — a chain such as
  ``A.id = B.id = C.id`` correlating positions of the pattern. Handled
  by partitioning the stream (HPC, paper Fig. 8).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import PredicateError, QueryError
from repro.events.event import Event

_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

_MISSING = object()


def comparison_fn(op: str) -> Callable[[Any, Any], bool]:
    """Look up the Python comparison for an operator token."""
    try:
        return _OPS[op]
    except KeyError:
        raise QueryError(f"unsupported comparison operator {op!r}") from None


class Predicate:
    """Base class: everything a WHERE clause can contain."""

    #: Event types this predicate constrains (used for routing).
    event_types: tuple[str, ...] = ()

    def is_local(self) -> bool:
        """True when the predicate filters single events at ingestion."""
        raise NotImplementedError

    def matches(self, event: Event) -> bool:
        """Evaluate a *local* predicate on one event.

        Events of types the predicate does not constrain pass
        vacuously. Only meaningful when :meth:`is_local` is true.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class LocalPredicate(Predicate):
    """``<Type>.<attr> <op> <constant>``."""

    event_type: str
    attribute: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        comparison_fn(self.op)  # validate eagerly

    @property
    def event_types(self) -> tuple[str, ...]:  # type: ignore[override]
        return (self.event_type,)

    def is_local(self) -> bool:
        return True

    def matches(self, event: Event) -> bool:
        if event.event_type != self.event_type:
            return True
        actual = event.get(self.attribute, _MISSING)
        if actual is _MISSING:
            raise PredicateError(
                f"event of type {self.event_type!r} has no attribute "
                f"{self.attribute!r}"
            )
        return comparison_fn(self.op)(actual, self.value)

    def __str__(self) -> str:
        value = repr(self.value) if isinstance(self.value, str) else self.value
        return f"{self.event_type}.{self.attribute} {self.op} {value}"


@dataclass(frozen=True)
class AttributeComparison(Predicate):
    """``<Type>.<attrA> <op> <Type>.<attrB>`` on one event instance.

    Cross-type attribute comparisons other than equality chains are not
    part of the paper's dialect; comparisons between two attributes are
    therefore restricted to a single event type.
    """

    event_type: str
    left_attribute: str
    op: str
    right_attribute: str

    def __post_init__(self) -> None:
        comparison_fn(self.op)

    @property
    def event_types(self) -> tuple[str, ...]:  # type: ignore[override]
        return (self.event_type,)

    def is_local(self) -> bool:
        return True

    def matches(self, event: Event) -> bool:
        if event.event_type != self.event_type:
            return True
        for attribute in (self.left_attribute, self.right_attribute):
            if attribute not in event:
                raise PredicateError(
                    f"event of type {self.event_type!r} has no attribute "
                    f"{attribute!r}"
                )
        return comparison_fn(self.op)(
            event[self.left_attribute], event[self.right_attribute]
        )

    def __str__(self) -> str:
        return (
            f"{self.event_type}.{self.left_attribute} {self.op} "
            f"{self.event_type}.{self.right_attribute}"
        )


@dataclass(frozen=True)
class EquivalencePredicate(Predicate):
    """An equality chain ``T1.a1 = T2.a2 = ... = Tk.ak``.

    Events of the named types are routed into per-value partitions; the
    pattern is evaluated independently inside each partition (HPC).
    """

    terms: tuple[tuple[str, str], ...]

    def __post_init__(self) -> None:
        if len(self.terms) < 2:
            raise QueryError(
                "an equivalence predicate needs at least two terms"
            )
        types = [t for t, _ in self.terms]
        if len(set(types)) != len(types):
            raise QueryError(
                "an equivalence predicate may name each event type once"
            )

    @classmethod
    def on(cls, attribute: str, *event_types: str) -> "EquivalencePredicate":
        """Shorthand for the common same-attribute chain ``A.id = B.id``."""
        return cls(tuple((t, attribute) for t in event_types))

    @property
    def event_types(self) -> tuple[str, ...]:  # type: ignore[override]
        return tuple(t for t, _ in self.terms)

    def is_local(self) -> bool:
        return False

    def attribute_for(self, event_type: str) -> str | None:
        """The attribute this chain reads on ``event_type`` (or None)."""
        for candidate, attribute in self.terms:
            if candidate == event_type:
                return attribute
        return None

    def key_of(self, event: Event) -> Any:
        """Partition key for ``event``; raises if the attribute is absent."""
        attribute = self.attribute_for(event.event_type)
        if attribute is None:
            raise PredicateError(
                f"equivalence predicate does not constrain type "
                f"{event.event_type!r}"
            )
        value = event.get(attribute, _MISSING)
        if value is _MISSING:
            raise PredicateError(
                f"event of type {event.event_type!r} has no attribute "
                f"{attribute!r} required by an equivalence predicate"
            )
        return value

    def matches(self, event: Event) -> bool:
        raise QueryError(
            "equivalence predicates partition the stream; they are not "
            "evaluated per event"
        )

    def __str__(self) -> str:
        return " = ".join(f"{t}.{a}" for t, a in self.terms)


def split_predicates(
    predicates: tuple[Predicate, ...],
) -> tuple[tuple[Predicate, ...], tuple[EquivalencePredicate, ...]]:
    """Partition WHERE predicates into local filters and equivalences."""
    local = tuple(p for p in predicates if p.is_local())
    equivalences = tuple(
        p for p in predicates if isinstance(p, EquivalencePredicate)
    )
    return local, equivalences


def local_filter(
    predicates: tuple[Predicate, ...],
) -> Callable[[Event], bool]:
    """Compile the local predicates into one ingestion filter."""
    local = [p for p in predicates if p.is_local()]
    if not local:
        return lambda event: True

    def accepts(event: Event) -> bool:
        return all(p.matches(event) for p in local)

    return accepts
