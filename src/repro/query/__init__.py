"""Query model: pattern AST, predicates, text parser and fluent builder.

The dialect follows the paper (Sec. 2.1)::

    PATTERN SEQ(TypeUsername, TypePassword, ClickSubmit)
    WHERE TypePassword.value != TypeUsername.Password
    GROUP BY ip
    AGG COUNT
    WITHIN 10s

Use :func:`parse_query` for query text, or :class:`QueryBuilder` /
:func:`seq` for programmatic construction.
"""

from repro.query.ast import (
    AggKind,
    Aggregate,
    NegatedType,
    PatternElement,
    PositiveType,
    Query,
    SeqPattern,
    Window,
)
from repro.query.builder import QueryBuilder, seq
from repro.query.parser import parse_query, parse_workload
from repro.query.predicates import (
    AttributeComparison,
    EquivalencePredicate,
    LocalPredicate,
    Predicate,
)
from repro.query.validate import validate_query

__all__ = [
    "AggKind",
    "Aggregate",
    "AttributeComparison",
    "EquivalencePredicate",
    "LocalPredicate",
    "NegatedType",
    "PatternElement",
    "PositiveType",
    "Predicate",
    "Query",
    "QueryBuilder",
    "SeqPattern",
    "Window",
    "parse_query",
    "parse_workload",
    "seq",
    "validate_query",
]
