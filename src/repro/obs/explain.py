"""EXPLAIN plans: what the engine decided to do with a query.

An explain plan is a JSON-serializable dict with a stable shape
(``EXPLAIN_VERSION``) describing, per query:

* the parsed pattern and its dialect features (window, negation,
  Kleene, choice, predicates, GROUP BY, aggregate);
* the chosen execution path — which runtime the query compiles onto
  (DPC / SEM / vectorized SEM / HPC) and which lane it runs in
  (per-event, routed, or a shard fleet);
* the sharing strategy for multi-query engines — which prefixes or
  chopped segments are shared with which other queries;
* the cost model's *estimated* per-event update cost, so operators can
  later compare it against the funnel's *observed* cost
  (:func:`drift_from_funnel`).

:func:`explain_engine` duck-types over every engine family in the
library; engines' own ``explain()`` methods delegate here.
:func:`render_explain` turns a plan into deterministic text for the
``repro explain`` CLI (and the golden-file tests).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.query.ast import Query, common_prefix_length

#: Bumped when the plan dict shape changes incompatibly.
EXPLAIN_VERSION = 1

#: Default instances-per-type-per-window assumption for the a-priori
#: estimate (the benchmarks' fig12 default rate).
DEFAULT_RATE_PER_TYPE = 16.0


# ----- single-query plans -----------------------------------------------------


def runtime_of(query: Query, vectorized: bool = False) -> dict[str, Any]:
    """Mirror :meth:`repro.core.executor.ASeqEngine._compile`'s choice."""
    from repro.core.hpc import partition_attributes

    attributes = partition_attributes(query)
    if query.window is None:
        inner = "dpc"
    elif vectorized:
        inner = "vectorized_sem"
    else:
        inner = "sem"
    return {
        "kind": "hpc" if attributes else inner,
        "inner": inner if attributes else None,
        "partition_attribute": attributes[0] if attributes else None,
        "vectorized": bool(vectorized and query.window is not None),
    }


def estimate_cost(
    query: Query, rate_per_type: float = DEFAULT_RATE_PER_TYPE
) -> dict[str, Any]:
    """A-priori per-event cost from the paper's cost models (Eq. 3).

    ``updates_per_event`` is what the funnel later measures as
    ``runs_extended / predicate_pass``: under SEM each relevant arrival
    touches every live counter (≈ one per START instance in the
    window, i.e. ``rate_per_type``); under DPC exactly one.
    """
    positives = query.pattern.positive_types
    counts = [rate_per_type] * len(positives)
    from repro.baseline.cost_model import aseq_cost, stack_based_cost

    updates = 1.0 if query.window is None else float(rate_per_type)
    stack = stack_based_cost(counts)
    aseq = aseq_cost(counts)
    return {
        "model": "aseq",
        "assumed_rate_per_type_per_window": float(rate_per_type),
        "updates_per_event": updates,
        "aseq_per_window": aseq,
        "stack_based_per_window": stack,
        "speedup_vs_stack": (stack / aseq) if aseq else None,
    }


def explain_query(
    query: Query,
    vectorized: bool = False,
    lane: str = "per_event",
    sharing: dict[str, Any] | None = None,
    rate_per_type: float = DEFAULT_RATE_PER_TYPE,
) -> dict[str, Any]:
    """One query's full plan (pattern, features, runtime, estimate)."""
    pattern = query.pattern
    positives = pattern.positive_types
    return {
        "name": query.name,
        "text": " ".join(str(query).split()),
        "pattern": {
            "elements": [str(element) for element in pattern],
            "length": pattern.length,
            "positive_types": list(positives),
            "negated_types": list(pattern.negated_types),
        },
        "features": {
            "window_ms": (
                query.window.size_ms if query.window is not None else None
            ),
            "negation": pattern.has_negation,
            "kleene": pattern.has_kleene,
            "choice": any("|" in label for label in positives),
            "predicates": len(query.predicates),
            "group_by": query.group_by,
            "aggregate": str(query.aggregate),
        },
        "runtime": runtime_of(query, vectorized),
        "lane": lane,
        "sharing": sharing or {"strategy": "unshared", "shared_with": []},
        "estimated": estimate_cost(query, rate_per_type),
    }


# ----- estimated-vs-observed drift --------------------------------------------


def drift_from_funnel(
    query: Query, row: dict[str, Any]
) -> dict[str, float] | None:
    """Compare the cost model against one funnel snapshot.

    ``row`` is :meth:`repro.obs.funnel.QueryFunnel.snapshot` (or one of
    :func:`repro.obs.funnel.funnel_rows`): observed cost is counter
    updates per runtime-reaching event; the estimate recovers the
    per-type rate from the funnel's own event-time span, so no assumed
    rate enters. Returns ``None`` while there is too little signal
    (nothing passed, no event-time span yet).
    """
    window_ms = query.window.size_ms if query.window is not None else None
    types = len(query.pattern.all_positive_event_types)
    return drift_from_counts(window_ms, types, row)


def drift_from_counts(
    window_ms: int | None, n_types: int, row: dict[str, Any]
) -> dict[str, float] | None:
    """The drift computation on plain numbers (profile-file callers
    have the explain plan, not a live :class:`Query`)."""
    passed = row.get("predicate_pass") or 0
    extended = row.get("runs_extended") or 0
    if passed < 1:
        return None
    observed = extended / passed
    if window_ms is None:
        # DPC: one slot update per relevant arrival, by construction.
        estimated = 1.0
    else:
        first = row.get("first_event_ms")
        last = row.get("last_event_ms")
        if first is None or last is None:
            return None
        span = float(last) - float(first)
        if span <= 0:
            return None
        # Live counters ≈ START instances per window ≈ per-type event
        # rate × window; each passing event updates all of them.
        estimated = passed * window_ms / span / max(1, n_types)
    if estimated <= 0:
        return None
    return {
        "observed_updates_per_event": observed,
        "estimated_updates_per_event": estimated,
        "drift_ratio": observed / estimated,
    }


# ----- engine dispatch --------------------------------------------------------


def explain_engine(engine: Any) -> dict[str, Any]:
    """Structured plan for any engine family in the library.

    Dispatch is duck-typed on each family's distinctive surface, most
    specific first, so wrappers (sharded → stream → workload) win over
    the leaf engines they contain.
    """
    if hasattr(engine, "shard_attribute") and hasattr(engine, "shards"):
        return _explain_sharded(engine)
    if hasattr(engine, "register_executor") and hasattr(engine, "executor_of"):
        return _explain_stream(engine)
    if hasattr(engine, "unshared_executor"):
        return _explain_workload(engine)
    if hasattr(engine, "snapshot_rows_of"):
        return _explain_chop_connect(engine)
    if hasattr(engine, "current_counters"):
        return _explain_prefix_shared(engine)
    if hasattr(engine, "shared_types"):
        return _explain_ecube(engine)
    if hasattr(engine, "engine") and hasattr(engine, "query_names"):
        return _explain_unshared(engine)
    query = getattr(engine, "query", None)
    if query is not None:
        return _plan(
            "executor",
            {
                (query.name or "q"): _executor_plan(
                    engine, lane="per_event"
                )
            },
        )
    raise TypeError(f"cannot explain {type(engine).__name__}")


def _plan(kind: str, queries: dict[str, Any], **extra: Any) -> dict[str, Any]:
    plan = {
        "explain_version": EXPLAIN_VERSION,
        "kind": kind,
        "queries": queries,
    }
    plan.update(extra)
    return plan


def _executor_plan(
    executor: Any,
    lane: str,
    sharing: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Plan for one live executor, preferring its actual compiled
    runtime over the static prediction."""
    query = executor.query
    plan = explain_query(
        query,
        vectorized=bool(getattr(executor, "_vectorized", False)),
        lane=lane,
        sharing=sharing,
    )
    runtime = getattr(executor, "runtime", None)
    if runtime is not None:
        plan["runtime"]["compiled"] = type(runtime).__name__
    return plan


def _explain_stream(engine: Any) -> dict[str, Any]:
    lane = "routed" if engine.routed else "per_event"
    queries = {}
    for name in engine.query_names:
        executor = engine.executor_of(name)
        if hasattr(executor, "query"):
            queries[name] = _executor_plan(executor, lane=lane)
        else:
            queries[name] = {"name": name, "lane": lane, "opaque": True}
    return _plan("stream", queries, lane=lane)


def _explain_sharded(engine: Any) -> dict[str, Any]:
    queries = {}
    for name, (query, _sinks) in engine._specs.items():
        sharded = name in engine._sharded
        plan = explain_query(
            query,
            vectorized=engine._vectorized,
            lane="sharded" if sharded else "local",
        )
        if sharded:
            plan["shards"] = engine.shards
            plan["shard_attribute"] = engine.shard_attribute
        queries[name] = plan
    return _plan(
        "sharded",
        queries,
        shards=engine.shards,
        shard_attribute=engine.shard_attribute,
        sharded_queries=sorted(engine._sharded),
        local_queries=list(engine._local_names),
    )


def _segment_sharing(plans: Sequence[Any]) -> dict[str, dict[str, Any]]:
    """Who shares which chopped segment (the pool keys on
    (types, window), which is exactly (segment, window_ms))."""
    owners: dict[tuple[tuple[str, ...], int], list[str]] = {}
    for plan in plans:
        for segment in plan.segments:
            owners.setdefault((segment, plan.window_ms), []).append(
                plan.query.name
            )
    sharing = {}
    for plan in plans:
        name = plan.query.name
        segments = []
        for segment in plan.segments:
            shared_with = [
                other
                for other in owners[(segment, plan.window_ms)]
                if other != name
            ]
            segments.append(
                {
                    "types": list(segment),
                    "shared_with": sorted(shared_with),
                }
            )
        sharing[name] = {
            "strategy": "chop-connect",
            "segments": segments,
            "shared_with": sorted(
                {
                    other
                    for segment in segments
                    for other in segment["shared_with"]
                }
            ),
        }
    return sharing


def _explain_chop_connect(engine: Any) -> dict[str, Any]:
    plans = [pipeline.plan for pipeline in engine._pipelines.values()]
    sharing = _segment_sharing(plans)
    queries = {
        plan.query.name: explain_query(
            plan.query, lane="per_event", sharing=sharing[plan.query.name]
        )
        for plan in plans
    }
    return _plan(
        "chop_connect",
        queries,
        chops={str(plan): plan.cut_points for plan in plans},
    )


def _explain_prefix_shared(engine: Any) -> dict[str, Any]:
    queries = {}
    names = sorted(engine._queries)
    for name in names:
        query = engine._queries[name]
        shared_with = sorted(
            other
            for other in names
            if other != name
            and common_prefix_length(
                query.pattern, engine._queries[other].pattern
            )
            > 0
        )
        prefixes = {
            other: common_prefix_length(
                query.pattern, engine._queries[other].pattern
            )
            for other in shared_with
        }
        queries[name] = explain_query(
            query,
            lane="per_event",
            sharing={
                "strategy": "pretree",
                "shared_with": shared_with,
                "shared_prefix_length": prefixes,
            },
        )
    groups = [
        {
            "start": str(group.layout.start_label),
            "queries": sorted(group.layout.terminal_of),
            "trie_size": group.layout.size,
        }
        for group in engine._groups
    ]
    return _plan("prefix_shared", queries, groups=groups)


def _explain_ecube(engine: Any) -> dict[str, Any]:
    joined = sorted(engine._joins)
    queries = {}
    for name in engine.query_names:
        sharing = {
            "strategy": "ecube",
            "shared_substring": (
                list(engine.shared_types) if name in engine._joins else None
            ),
            "shared_with": (
                [other for other in joined if other != name]
                if name in engine._joins
                else []
            ),
        }
        queries[name] = explain_query(
            engine._queries[name], lane="per_event", sharing=sharing
        )
        queries[name]["runtime"] = {
            "kind": (
                "ecube_join" if name in engine._joins else "two_step"
            ),
            "vectorized": False,
        }
    return _plan(
        "ecube",
        queries,
        shared_types=list(engine.shared_types),
        joined=joined,
        private=sorted(engine._private),
    )


def _explain_unshared(engine: Any) -> dict[str, Any]:
    queries = {}
    for name in engine.query_names:
        executor = engine.engine(name)
        if hasattr(executor, "query"):
            queries[name] = _executor_plan(executor, lane="per_event")
        else:
            queries[name] = {"name": name, "opaque": True}
    return _plan("unshared", queries)


def _explain_workload(engine: Any) -> dict[str, Any]:
    queries: dict[str, Any] = {}
    shared = engine.shared_engine()
    if shared is not None:
        queries.update(_explain_chop_connect(shared)["queries"])
    for name in engine.unshared_query_names:
        executor = engine.unshared_executor(name)
        queries[name] = _executor_plan(executor, lane="per_event")
    return _plan(
        "workload",
        queries,
        shared_query_names=list(engine.shared_query_names),
        unshared_query_names=list(engine.unshared_query_names),
    )


# ----- rendering --------------------------------------------------------------


def _yes_no(flag: bool) -> str:
    return "yes" if flag else "no"


def render_explain(plan: dict[str, Any]) -> str:
    """Deterministic text rendering of an engine plan (CLI, goldens)."""
    lines = [f"EXPLAIN ({plan['kind']})"]
    if plan["kind"] == "sharded":
        lines.append(
            f"  shards={plan['shards']} "
            f"shard_attribute={plan['shard_attribute'] or '-'}"
        )
    for name in sorted(plan["queries"]):
        query = plan["queries"][name]
        lines.append(f"query {name}:")
        if query.get("opaque"):
            lines.append("  (opaque executor)")
            continue
        if "text" in query:
            lines.append(f"  {query['text']}")
        features = query.get("features")
        runtime = query.get("runtime")
        if runtime is not None:
            kind = runtime["kind"]
            if runtime.get("inner"):
                kind = (
                    f"{kind}[{runtime['inner']}] "
                    f"by {runtime['partition_attribute']}"
                )
            lines.append(
                f"  lane: {query.get('lane', '-')}   runtime: {kind}"
                f"   vectorized: {_yes_no(runtime['vectorized'])}"
            )
        if features is not None:
            window = features["window_ms"]
            lines.append(
                "  features: "
                f"window={'-' if window is None else f'{window}ms'} "
                f"negation={_yes_no(features['negation'])} "
                f"kleene={_yes_no(features['kleene'])} "
                f"predicates={features['predicates']} "
                f"group_by={features['group_by'] or '-'} "
                f"agg={features['aggregate']}"
            )
        sharing = query.get("sharing")
        if sharing is not None:
            strategy = sharing.get("strategy", "unshared")
            shared_with = sharing.get("shared_with") or []
            line = f"  sharing: {strategy}"
            if shared_with:
                line += f" with {', '.join(shared_with)}"
            lines.append(line)
            for segment in sharing.get("segments") or []:
                seg = ", ".join(segment["types"])
                with_ = segment["shared_with"]
                lines.append(
                    f"    segment ({seg})"
                    + (f" shared with {', '.join(with_)}" if with_ else "")
                )
            prefixes = sharing.get("shared_prefix_length") or {}
            for other in sorted(prefixes):
                lines.append(
                    f"    prefix of length {prefixes[other]} "
                    f"shared with {other}"
                )
        estimated = query.get("estimated")
        if estimated is not None:
            lines.append(
                "  estimated: "
                f"{estimated['updates_per_event']:.1f} updates/event "
                f"(assuming "
                f"{estimated['assumed_rate_per_type_per_window']:.0f} "
                "instances/type/window); "
                f"stack-based would cost "
                f"{estimated['stack_based_per_window']:.1f}/window "
                f"vs A-Seq {estimated['aseq_per_window']:.1f}"
            )
    return "\n".join(lines) + "\n"


__all__ = [
    "EXPLAIN_VERSION",
    "DEFAULT_RATE_PER_TYPE",
    "explain_query",
    "explain_engine",
    "estimate_cost",
    "runtime_of",
    "drift_from_funnel",
    "drift_from_counts",
    "render_explain",
]
