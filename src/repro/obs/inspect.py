"""Engine introspection: the layer beneath the admin HTTP server.

Every engine family implements an ``inspect()`` method returning a
typed, JSON-serializable summary of its live counting state (SEM
counters, HPC partitions, Chop-Connect snapshot tables, PreTree
instances). This module holds the *generic* half: duck-typed helpers
that turn any engine — a :class:`~repro.engine.engine.StreamEngine`
with many registrations, a shared multi-query engine, or a bare
executor — into the admin plane's three shapes:

* :func:`query_rows` — one cost-accounting row per query (the
  ``/queries`` table): events routed, counter updates, outputs, live
  prefix-counter/SEM-instance count, HPC partition count, Chop-Connect
  SnapShot rows;
* :func:`state_of` — one query's full structured state dump
  (``/queries/<id>/state``);
* :func:`health_snapshot` — liveness summary (``/healthz``):
  quarantined registrations, dead-letter depth, journal backlog.

Everything here is read-only and safe to call from a scrape thread
while the engine thread keeps ingesting: collections are snapshotted
(``list(...)`` is atomic under the GIL) before iteration, and probes
never mutate engine state. Deliberately *no* imports from the engine
packages — only ``getattr`` duck typing — so this module sits below
all of them.
"""

from __future__ import annotations

from typing import Any


def cost_summary(executor: Any) -> dict[str, Any]:
    """Per-query cost accounting of one executor (GRETA/Sharon-style
    state-size metrics): post-filter events, counter updates, live
    objects, plus family-specific counts when the runtime exposes them.
    """
    row: dict[str, Any] = {}
    events = getattr(executor, "events_processed", None)
    if events is not None:
        row["events_processed"] = int(events)
    updates = getattr(executor, "counter_updates", None)
    if updates is not None:
        row["counter_updates"] = int(updates)
    probe = getattr(executor, "current_objects", None)
    if callable(probe):
        row["live_objects"] = int(probe())
    runtime = getattr(executor, "runtime", executor)
    row["runtime_kind"] = type(runtime).__name__
    partition_count = getattr(runtime, "partition_count", None)
    if partition_count is not None:
        row["hpc_partitions"] = int(partition_count)
    active = getattr(runtime, "active_counters", None)
    if active is not None:
        row["sem_active_counters"] = int(active)
    segment_engines = getattr(runtime, "shared_segment_engines", None)
    if segment_engines is not None:
        row["cc_segment_engines"] = int(segment_engines)
        snapshot_rows = 0
        names = getattr(runtime, "query_names", None) or ()
        rows_of = getattr(runtime, "snapshot_rows_of", None)
        if rows_of is not None:
            for name in names:
                snapshot_rows += rows_of(name)
        row["cc_snapshot_rows"] = snapshot_rows
    return row


def _executor_for(engine: Any, name: str) -> Any | None:
    """The per-query executor inside a multi-query engine, if any."""
    probe = getattr(engine, "unshared_executor", None)  # WorkloadEngine
    if probe is not None:
        executor = probe(name)
        if executor is not None:
            return executor
        return None  # a shared query: the engine itself holds its state
    probe = getattr(engine, "engine", None)  # UnsharedEngine
    if callable(probe):
        try:
            return probe(name)
        except KeyError:
            return None
    return None


def query_rows(engine: Any) -> list[dict[str, Any]]:
    """One cost-accounting row per query, whatever the engine shape."""
    rows_fn = getattr(engine, "query_rows", None)
    if rows_fn is not None:  # StreamEngine keeps richer per-registration data
        return rows_fn()
    names = getattr(engine, "query_names", None)
    if names is None:
        name = getattr(getattr(engine, "query", None), "name", None) or "q"
        return [{"query": name, **cost_summary(engine)}]
    rows = []
    shared = getattr(engine, "shared_engine", None)
    shared_engine = shared() if shared is not None else None
    for name in list(names):
        row: dict[str, Any] = {"query": name}
        executor = _executor_for(engine, name)
        if executor is not None:
            row.update(cost_summary(executor))
        else:
            holder = shared_engine if shared_engine is not None else engine
            row["runtime_kind"] = type(holder).__name__
            events = getattr(holder, "events_processed", None)
            if events is not None:
                row["events_processed"] = int(events)
            rows_of = getattr(holder, "snapshot_rows_of", None)
            if rows_of is not None:
                row["cc_snapshot_rows"] = int(rows_of(name))
        rows.append(row)
    return rows


def state_of(engine: Any, query_id: str) -> dict[str, Any] | None:
    """One query's structured state dump, or None when unknown."""
    probe = getattr(engine, "state_of", None)  # ShardedStreamEngine
    if probe is not None:
        return probe(query_id)
    executor_of = getattr(engine, "executor_of", None)  # StreamEngine
    if executor_of is not None:
        try:
            executor = executor_of(query_id)
        except Exception:
            return None
        return _inspect_or_kind(executor)
    names = getattr(engine, "query_names", None)
    if names is not None:
        if query_id not in list(names):
            return None
        executor = _executor_for(engine, query_id)
        if executor is not None:
            return _inspect_or_kind(executor)
        shared = getattr(engine, "shared_engine", None)
        holder = shared() if shared is not None else None
        if holder is None:
            holder = engine
        state = _inspect_or_kind(holder)
        return {"query": query_id, "engine": state}
    name = getattr(getattr(engine, "query", None), "name", None) or "q"
    if query_id in (name, "q"):
        return _inspect_or_kind(engine)
    return None


def _inspect_or_kind(target: Any) -> dict[str, Any]:
    probe = getattr(target, "inspect", None)
    if probe is not None:
        return probe()
    return {"kind": type(target).__name__}


def engine_inspect(engine: Any) -> dict[str, Any]:
    """Engine-wide structured summary, whatever the engine shape."""
    state = _inspect_or_kind(engine)
    if "kind" not in state:
        state["kind"] = type(engine).__name__
    return state


def health_snapshot(engine: Any) -> dict[str, Any]:
    """Liveness summary: quarantines, DLQ depth, journal backlog, and —
    for sharded engines — degraded shards and per-shard heartbeats.

    ``healthy`` is False exactly when a registration is quarantined or
    a shard has been folded into the local lane — the engine is up but
    silently serving some query below spec, which an orchestrator
    should see as degraded.
    """
    quarantined: list[str] = []
    probe = getattr(engine, "quarantined", None)
    if callable(probe):
        quarantined = list(probe())
    dlq = getattr(engine, "dlq", None)
    dlq_depth = len(dlq) if dlq is not None else 0
    journal = getattr(engine, "journal", None)
    backlog = int(getattr(journal, "backlog_bytes", 0) or 0)
    engine_metrics = getattr(engine, "metrics", None)
    events = getattr(engine_metrics, "events", None)
    if events is None:
        events = getattr(engine, "events_processed", None)
    degraded_shards = sorted(getattr(engine, "degraded_shards", None) or ())
    healthy = not quarantined and not degraded_shards
    snapshot = {
        "status": "ok" if healthy else "degraded",
        "healthy": healthy,
        "quarantined": quarantined,
        "dlq_depth": dlq_depth,
        "journal_backlog_bytes": backlog,
        "events": events,
    }
    shard_probe = getattr(engine, "shard_health", None)
    if callable(shard_probe):
        snapshot["degraded_shards"] = degraded_shards
        snapshot["shards"] = shard_probe()
    membership_probe = getattr(engine, "membership_view", None)
    if callable(membership_probe):
        membership = membership_probe()
        if membership is not None:
            snapshot["membership"] = membership
    return snapshot
