"""Structured, rate-limited logging for the runtime's subsystems.

The engines themselves stay silent (they report through metrics and
traces); the *operational* layers — CLI, supervisor, admin server —
need to tell a human what happened, and in production that text must
be machine-parseable. This module gives each subsystem one
:class:`StructLogger`:

* every record is one line on the configured stream — either a JSON
  object (``{"ts": ..., "level": "info", "subsystem": "supervisor",
  "event": "quarantine", "query": "q3", ...}``) or, in text mode, the
  human-readable ``# ``-prefixed diagnostics the CLI has always
  printed;
* records are rate-limited per logger by a token bucket so a
  quarantine storm or a hot supervisor loop cannot flood stderr: the
  number of suppressed records is carried on the next record that
  passes (``"dropped": N``);
* configuration is process-global (:func:`configure`) and loggers are
  cached per subsystem (:func:`get_logger`), mirroring the default
  metrics registry.

Nothing here imports the stdlib ``logging`` machinery — one line per
record, no handlers, no propagation, so the hot path of an *enabled*
logger is a clock read plus one ``write``.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Any, TextIO

LEVELS = ("debug", "info", "warning", "error")
_LEVEL_RANK = {name: rank for rank, name in enumerate(LEVELS)}


class LogConfig:
    """Process-global logging configuration."""

    __slots__ = ("stream", "level", "json_mode", "rate_per_s", "burst")

    def __init__(
        self,
        stream: TextIO | None = None,
        level: str = "info",
        json_mode: bool = False,
        rate_per_s: float = 50.0,
        burst: int = 100,
    ):
        if level not in _LEVEL_RANK:
            raise ValueError(f"level must be one of {LEVELS}, got {level!r}")
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if burst < 1:
            raise ValueError("burst must be at least 1")
        self.stream = stream
        self.level = level
        self.json_mode = json_mode
        self.rate_per_s = rate_per_s
        self.burst = burst


_config = LogConfig()
_loggers: dict[str, "StructLogger"] = {}
_loggers_lock = threading.Lock()


def configure(
    stream: TextIO | None = None,
    level: str = "info",
    json_mode: bool = False,
    rate_per_s: float = 50.0,
    burst: int = 100,
) -> LogConfig:
    """Install the process-global log configuration.

    Existing loggers pick the new configuration up immediately (they
    read it per record); new loggers are created against it. Returns
    the previous configuration so callers (the CLI, tests) can restore
    it with :func:`install_config`.
    """
    return install_config(
        LogConfig(stream, level, json_mode, rate_per_s, burst)
    )


def install_config(config: LogConfig) -> LogConfig:
    """Swap in a prebuilt :class:`LogConfig`; returns the previous one."""
    global _config
    previous = _config
    _config = config
    with _loggers_lock:
        for logger in _loggers.values():
            logger._reset_bucket()
    return previous


def get_logger(subsystem: str) -> "StructLogger":
    """The cached logger of one subsystem (``cli``, ``supervisor``, ...)."""
    with _loggers_lock:
        logger = _loggers.get(subsystem)
        if logger is None:
            logger = StructLogger(subsystem)
            _loggers[subsystem] = logger
        return logger


class StructLogger:
    """One subsystem's structured logger.

    ``info("quarantine", query="q3", failures=5)`` emits one record
    with ``event="quarantine"`` plus the fields. In text mode a
    ``message=`` field (or the rendered fields) is printed behind a
    ``# `` prefix, preserving the CLI's historical stderr format.
    """

    def __init__(self, subsystem: str):
        self.subsystem = subsystem
        self.records_emitted = 0
        self.records_dropped = 0
        self._lock = threading.Lock()
        self._tokens = float(_config.burst)
        self._refill_at = time.monotonic()
        self._pending_dropped = 0

    # ----- rate limiting ----------------------------------------------------

    def _reset_bucket(self) -> None:
        with self._lock:
            self._tokens = float(_config.burst)
            self._refill_at = time.monotonic()

    def _admit(self) -> tuple[bool, int]:
        """Token-bucket admission; returns (admitted, dropped_before)."""
        config = _config
        now = time.monotonic()
        with self._lock:
            elapsed = now - self._refill_at
            self._refill_at = now
            self._tokens = min(
                float(config.burst),
                self._tokens + elapsed * config.rate_per_s,
            )
            if self._tokens < 1.0:
                self._pending_dropped += 1
                self.records_dropped += 1
                return False, 0
            self._tokens -= 1.0
            dropped = self._pending_dropped
            self._pending_dropped = 0
            return True, dropped

    # ----- record emission --------------------------------------------------

    def log(self, level: str, event: str, **fields: Any) -> None:
        config = _config
        if _LEVEL_RANK[level] < _LEVEL_RANK[config.level]:
            return
        admitted, dropped = self._admit()
        if not admitted:
            return
        stream = config.stream if config.stream is not None else sys.stderr
        message = fields.pop("message", None)
        if config.json_mode:
            record: dict[str, Any] = {
                "ts": round(time.time(), 3),
                "level": level,
                "subsystem": self.subsystem,
                "event": event,
            }
            if message is not None:
                record["message"] = message
            record.update(fields)
            if dropped:
                record["dropped"] = dropped
            line = json.dumps(record, default=str)
        else:
            if message is None:
                rendered = " ".join(
                    f"{key}={value}" for key, value in fields.items()
                )
                message = f"{event} {rendered}" if rendered else event
            line = f"# {message}"
            if dropped:
                line += f" (+{dropped} log records suppressed)"
        self.records_emitted += 1
        try:
            stream.write(line + "\n")
        except Exception:
            # A broken log stream must never take the engine down.
            self.records_dropped += 1

    def debug(self, event: str, **fields: Any) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log("error", event, **fields)
