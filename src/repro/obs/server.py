"""The admin HTTP server: a live ops plane for a running engine.

A :class:`AdminServer` embeds a stdlib
:class:`~http.server.ThreadingHTTPServer` next to any engine (the CLI
wires it behind ``--admin-port``) and serves:

========================  ====================================================
``GET /metrics``          Prometheus text exposition of the registry
``GET /metrics.json``     JSON snapshot (with derived histogram quantiles)
``GET /healthz``          liveness: 200 when healthy, 503 when any
                          registration is quarantined or any shard is
                          degraded; body carries the quarantined names,
                          DLQ depth, journal backlog and shard health
``GET /queries``          one cost-accounting row per registered query
``GET /queries/<id>/state``  dump of that query's live
                          prefix-counter state (``inspect()``)
``GET /explain``          the engine's structured EXPLAIN plan (JSON,
                          plus the CLI's text rendering under ``text``)
``GET /queries/<id>/explain``  one query's slice of the plan
``GET /workload_profile`` the versioned workload profile document
                          (explain + funnel + state + drift)
``GET /trace``            drain the trace ring buffer as JSON spans
                          (a sharded engine serves stitched
                          router→shard→merge chains via its own hook)
``GET /dashboard.json``   time-series history snapshot (metric rings)
``GET /dashboard``        the same history as plain-text sparklines
``GET /profile``          collapsed-stack profile (404 unless profiling
                          was enabled with ``--profile``)
========================  ====================================================

The server thread only ever *reads* engine state, through the
snapshot-before-iterate discipline of :mod:`repro.obs.inspect`; the
engine thread never blocks on a scrape. (One guarded exception: the
sharded engine's scrape path flushes pending event buffers under a
dedicated per-worker mutex shared with the ingest path — see
:mod:`repro.engine.sharded`.) Handlers are defensive: a read
torn by a concurrent mutation is retried once, and any unexpected
error returns a 500 without touching the engine.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.obs.export import (
    registry_snapshot,
    render_sparklines,
    to_prometheus,
)
from repro.obs.inspect import health_snapshot, query_rows, state_of
from repro.obs.logging import get_logger
from repro.obs.profile import SamplingProfiler, collapsed_text
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.obs.tracing import TraceRecorder

_log = get_logger("admin")


class _AdminHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    #: The owning AdminServer; set right after construction.
    admin: "AdminServer"


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    # ----- plumbing ---------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        _log.debug("request", message=f"{self.client_address[0]} "
                   + format % args)

    def _send(
        self, status: int, body: bytes, content_type: str
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: Any) -> None:
        body = json.dumps(payload, indent=2, default=str).encode("utf-8")
        self._send(status, body + b"\n", "application/json")

    # ----- routing ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler naming
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            self._route(path)
        except (BrokenPipeError, ConnectionResetError):
            pass  # scraper went away mid-response
        except Exception as error:  # defensive: a scrape never crashes
            _log.error(
                "handler_error",
                message=f"admin handler failed on {path}: {error!r}",
                path=path,
                error=type(error).__name__,
            )
            try:
                self._send_json(
                    500, {"error": type(error).__name__, "detail": str(error)}
                )
            except Exception:
                pass

    def _route(self, path: str) -> None:
        admin = self.server.admin  # type: ignore[attr-defined]
        if path == "/metrics":
            text = admin._read(lambda: admin.render_prometheus())
            self._send(
                200, text.encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        elif path == "/metrics.json":
            self._send_json(200, admin._read(admin.render_metrics_json))
        elif path == "/healthz":
            health = admin._read(lambda: health_snapshot(admin.engine))
            # Advisory: sustained state growth is worth paging on but
            # not worth failing the liveness probe over.
            health["growth_alarms"] = admin._read(admin.growth_alarms)
            self._send_json(200 if health["healthy"] else 503, health)
        elif path == "/queries":
            rows = admin._read(lambda: query_rows(admin.engine))
            self._send_json(200, {"queries": rows})
        elif path.startswith("/queries/") and path.endswith("/state"):
            query_id = path[len("/queries/"):-len("/state")]
            state = admin._read(lambda: state_of(admin.engine, query_id))
            if state is None:
                self._send_json(
                    404, {"error": "unknown query", "query": query_id}
                )
            else:
                self._send_json(200, state)
        elif path == "/explain":
            self._send_json(200, admin._read(admin.render_explain))
        elif path.startswith("/queries/") and path.endswith("/explain"):
            query_id = path[len("/queries/"):-len("/explain")]
            plan = admin._read(
                lambda: admin.render_explain_query(query_id)
            )
            if plan is None:
                self._send_json(
                    404, {"error": "unknown query", "query": query_id}
                )
            else:
                self._send_json(200, plan)
        elif path == "/workload_profile":
            self._send_json(
                200, admin._read(admin.render_workload_profile)
            )
        elif path == "/trace":
            self._send_json(200, admin._read(admin.drain_trace))
        elif path == "/dashboard.json":
            self._send_json(200, admin._read(admin.render_dashboard_json))
        elif path == "/dashboard":
            text = admin._read(admin.render_dashboard_text)
            self._send(
                200, text.encode("utf-8"), "text/plain; charset=utf-8"
            )
        elif path == "/profile":
            profile = admin._read(admin.render_profile)
            if profile is None:
                self._send_json(
                    404,
                    {"error": "profiling is off (enable with --profile)"},
                )
            else:
                self._send(
                    200, profile.encode("utf-8"),
                    "text/plain; charset=utf-8",
                )
        elif path == "/":
            self._send_json(200, {"endpoints": sorted(ENDPOINTS)})
        else:
            self._send_json(404, {"error": "not found", "path": path})


ENDPOINTS = (
    "/metrics", "/metrics.json", "/healthz", "/queries",
    "/queries/<id>/state", "/queries/<id>/explain", "/explain",
    "/workload_profile", "/trace", "/dashboard.json", "/dashboard",
    "/profile",
)


class AdminServer:
    """Embedded admin endpoint for one engine.

    Parameters
    ----------
    engine:
        Anything with engine state worth inspecting — a
        :class:`~repro.engine.engine.StreamEngine` (supervised or not),
        a shared multi-query engine, or a bare executor.
    registry:
        The metrics registry to expose; defaults to the engine's own
        ``obs_registry`` (falling back to the process default).
    trace:
        The trace recorder ``/trace`` drains; optional. An engine with
        its own ``drain_trace`` hook (the sharded engine) wins — it
        merges and stitches spans from every process.
    history:
        A started :class:`~repro.obs.history.HistoryRecorder` for
        ``/dashboard.json`` / ``/dashboard``; defaults to the engine's
        ``history`` attribute when it has one.
    profiler:
        A started :class:`~repro.obs.profile.SamplingProfiler` for
        ``/profile``. An engine with a ``collapsed_profile`` hook (the
        sharded engine: whole-fleet profile) wins.
    host / port:
        Bind address. ``port=0`` picks a free port (tests); read the
        chosen one back from :attr:`port`.
    """

    def __init__(
        self,
        engine: Any,
        registry: MetricsRegistry | None = None,
        trace: TraceRecorder | None = None,
        history: Any = None,
        profiler: SamplingProfiler | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.engine = engine
        if registry is None:
            registry = getattr(engine, "obs_registry", None)
        self.registry = resolve_registry(registry)
        self.trace = trace
        if history is None:
            history = getattr(engine, "history", None)
        self.history = history
        self.profiler = profiler
        self._httpd = _AdminHTTPServer((host, port), _Handler)
        self._httpd.admin = self
        self._thread: threading.Thread | None = None

    # ----- lifecycle --------------------------------------------------------

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    def url(self, path: str = "/") -> str:
        return f"http://{self.host}:{self.port}{path}"

    def start(self) -> "AdminServer":
        if self._thread is not None:
            raise RuntimeError("admin server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-admin",
            daemon=True,
        )
        self._thread.start()
        _log.info(
            "admin_listening",
            message=f"admin server listening on {self.url()}",
            host=self.host,
            port=self.port,
        )
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._thread.join(timeout=5.0)
        self._httpd.server_close()
        self._thread = None

    def __enter__(self) -> "AdminServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ----- views ------------------------------------------------------------

    def _read(self, producer):
        """Run a read against live state, retrying once on a torn read.

        ``list(...)`` snapshots make torn reads rare, but a dict that
        grows mid-``items()`` can still raise ``RuntimeError``; the
        second attempt sees the post-mutation state.
        """
        try:
            return producer()
        except RuntimeError:
            return producer()

    def _refresh(self) -> None:
        refresh = getattr(self.engine, "refresh_cost_metrics", None)
        if refresh is not None:
            refresh()

    def render_prometheus(self) -> str:
        self._refresh()
        return to_prometheus(self.registry)

    def render_metrics_json(self) -> dict[str, Any]:
        self._refresh()
        return registry_snapshot(self.registry)

    def drain_trace(self) -> dict[str, Any]:
        hook = getattr(self.engine, "drain_trace", None)
        if callable(hook):
            return hook()
        trace = self.trace
        if trace is None or not trace.enabled:
            return {"spans": [], "recorded_total": 0, "enabled": False}
        spans = trace.spans()
        trace.clear()
        return {
            "enabled": True,
            "recorded_total": trace.recorded_total,
            "spans": [
                {
                    "seq": span.seq,
                    "ts": span.ts,
                    "stage": span.stage,
                    "event_type": span.event_type,
                    "detail": span.detail,
                    "trace_id": span.trace_id,
                    "wall": span.wall,
                }
                for span in spans
            ],
        }

    def growth_alarms(self) -> list[dict[str, Any]]:
        """State-growth alarms from the history rings ([] without one)."""
        history = self.history
        if history is None:
            return []
        alarms = getattr(history, "growth_alarms", None)
        return alarms() if callable(alarms) else []

    def render_explain(self) -> dict[str, Any]:
        """The engine's EXPLAIN plan, with the text rendering inlined."""
        from repro.obs.explain import explain_engine, render_explain

        hook = getattr(self.engine, "explain", None)
        plan = hook() if callable(hook) else explain_engine(self.engine)
        plan["text"] = render_explain(plan)
        return plan

    def render_explain_query(self, query_id: str) -> dict[str, Any] | None:
        plan = self.render_explain()
        query = plan["queries"].get(query_id)
        if query is None:
            return None
        return {
            "explain_version": plan["explain_version"],
            "kind": plan["kind"],
            "query": query,
        }

    def render_workload_profile(self) -> dict[str, Any]:
        from repro.obs.workload_profile import build_workload_profile

        self._refresh()
        return build_workload_profile(self.engine)

    def render_dashboard_json(self) -> dict[str, Any]:
        history = self.history
        if history is None:
            return {"enabled": False, "series": []}
        snapshot = history.snapshot()
        snapshot["enabled"] = True
        return snapshot

    def render_dashboard_text(self) -> str:
        history = self.history
        if history is None:
            return "history is off (enable with --history-every)\n"
        return render_sparklines(history.snapshot())

    def render_profile(self) -> str | None:
        """Collapsed-stack text, or ``None`` when profiling is off."""
        hook = getattr(self.engine, "collapsed_profile", None)
        if callable(hook):
            return hook()
        profiler = self.profiler
        if profiler is None:
            return None
        text = collapsed_text(profiler.counts(), root="main")
        return text if text else "# no samples yet\n"
