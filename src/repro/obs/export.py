"""Exporters: Prometheus text exposition and JSON snapshots.

Metric names inside the registry use the final exported spelling
(``snake_case``, counters suffixed ``_total``); the exporters only
sanitize characters Prometheus forbids and render values. JSON
snapshots carry the same data plus the derived histogram quantiles so
figure scripts and dashboards need no bucket math of their own.
"""

from __future__ import annotations

import json
import re
from typing import Any

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_FIX = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_ESCAPES = str.maketrans(
    {"\\": r"\\", '"': r"\"", "\n": r"\n"}
)


def _name(raw: str) -> str:
    if _NAME_OK.match(raw):
        return raw
    fixed = _NAME_FIX.sub("_", raw)
    if not fixed or not _NAME_OK.match(fixed):
        fixed = "_" + fixed
    return fixed


def _labels(pairs: tuple[tuple[str, str], ...], extra: str = "") -> str:
    rendered = [
        f'{_name(key)}="{str(value).translate(_LABEL_ESCAPES)}"'
        for key, value in pairs
    ]
    if extra:
        rendered.append(extra)
    return "{" + ",".join(rendered) + "}" if rendered else ""


def _value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition format 0.0.4 of the whole registry."""
    lines: list[str] = []
    seen_headers: set[str] = set()
    for metric in registry.metrics():
        name = _name(metric.name)
        if name not in seen_headers:
            seen_headers.add(name)
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
        if isinstance(metric, Histogram):
            for bound, cumulative in metric.cumulative_buckets():
                bucket_labels = _labels(
                    metric.labels, f'le="{_value(bound)}"'
                )
                lines.append(f"{name}_bucket{bucket_labels} {cumulative}")
            suffix_labels = _labels(metric.labels)
            lines.append(f"{name}_sum{suffix_labels} {_value(metric.sum)}")
            lines.append(f"{name}_count{suffix_labels} {metric.count}")
        else:
            lines.append(
                f"{name}{_labels(metric.labels)} {_value(metric.value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def registry_snapshot(registry: MetricsRegistry) -> dict[str, Any]:
    """JSON-ready snapshot: counters, gauges, histograms w/ quantiles."""
    counters: list[dict[str, Any]] = []
    gauges: list[dict[str, Any]] = []
    histograms: list[dict[str, Any]] = []
    for metric in registry.metrics():
        entry: dict[str, Any] = {"name": metric.name}
        if metric.labels:
            entry["labels"] = dict(metric.labels)
        if isinstance(metric, Histogram):
            entry.update(
                count=metric.count,
                sum=metric.sum,
                mean=metric.mean,
                p50=metric.p50,
                p95=metric.p95,
                p99=metric.p99,
                max=metric.max,
                buckets=[
                    {"le": bound if bound != float("inf") else "+Inf",
                     "count": cumulative}
                    for bound, cumulative in metric.cumulative_buckets()
                ],
            )
            histograms.append(entry)
        elif isinstance(metric, Gauge):
            entry["value"] = metric.value
            gauges.append(entry)
        elif isinstance(metric, Counter):
            entry["value"] = metric.value
            counters.append(entry)
    return {
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }


_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def render_sparklines(snapshot: dict[str, Any], width: int = 60) -> str:
    """Plain-text sparkline dashboard of a history snapshot.

    One line per series (the ``/dashboard`` view): a label, the last
    ``width`` points as unicode block sparks scaled to the series'
    own min/max, and the min/last/max values so the sparks have units.
    """
    lines: list[str] = []
    for series in snapshot.get("series", ()):
        values = [value for _, value in series.get("points", ())][-width:]
        if not values:
            continue
        low, high = min(values), max(values)
        span = high - low
        sparks = "".join(
            _SPARK_BLOCKS[
                int((value - low) / span * (len(_SPARK_BLOCKS) - 1))
                if span else 0
            ]
            for value in values
        )
        label = series.get("name", "?")
        labels = series.get("labels") or {}
        if labels:
            rendered = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            label = f"{label}{{{rendered}}}"
        lines.append(
            f"{label:<44} {sparks}  "
            f"min={low:g} last={values[-1]:g} max={high:g}"
        )
    if not lines:
        return "no history samples yet\n"
    return "\n".join(lines) + "\n"


def write_prometheus(registry: MetricsRegistry, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_prometheus(registry))


def write_json_snapshot(
    registry: MetricsRegistry, path: str, **extra: Any
) -> None:
    """Write :func:`registry_snapshot` (plus ``extra`` top-level keys)."""
    snapshot = registry_snapshot(registry)
    snapshot.update(extra)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, default=str)
        handle.write("\n")
