"""Metric primitives and the registry that owns them.

Three primitives cover everything the engines report:

* :class:`Counter` — a monotonically increasing total;
* :class:`Gauge` — a value that can go up and down (live object counts);
* :class:`Histogram` — fixed log2-spaced buckets with p50/p95/p99/max
  readouts, built for microsecond-scale latencies.

Instrumented code asks the registry once, at construction time, for the
metric objects it will touch (``self._m_events = registry.counter(...)``)
and then updates those objects directly on the hot path — no dict
lookups, no allocation per event. The :class:`NullRegistry` hands out
shared no-op metric singletons and reports ``enabled = False`` so hot
paths can skip instrumentation with a single boolean check.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Iterator

LabelPairs = tuple[tuple[str, str], ...]

#: Default histogram bounds: log2-spaced, 1 .. 2^20 (tuned for
#: microsecond latencies; the overflow bucket catches everything else).
LOG2_BOUNDS: tuple[float, ...] = tuple(float(2 ** i) for i in range(21))


def _label_key(labels: dict[str, str]) -> LabelPairs:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing total."""

    kind = "counter"
    __slots__ = ("name", "help", "labels", "value")

    def __init__(self, name: str, help: str = "", labels: LabelPairs = ()):
        self.name = name
        self.help = help
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}{dict(self.labels)}={self.value})"


class Gauge:
    """A value that can move in both directions."""

    kind = "gauge"
    __slots__ = ("name", "help", "labels", "value")

    def __init__(self, name: str, help: str = "", labels: LabelPairs = ()):
        self.name = name
        self.help = help
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def set_max(self, value: float) -> None:
        """Keep the high-water mark (peak live-object style gauges)."""
        if value > self.value:
            self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}{dict(self.labels)}={self.value})"


class Histogram:
    """Fixed-bucket histogram with quantile readouts.

    Buckets are defined by their inclusive upper bounds (default
    :data:`LOG2_BOUNDS`); one overflow bucket catches observations above
    the last bound. Quantiles are read as the upper bound of the bucket
    the quantile falls in (the overflow bucket reports the exact
    maximum), which is the usual fixed-bucket trade: cheap O(1)
    ``observe``, bounded relative error set by the bucket spacing.
    """

    kind = "histogram"
    __slots__ = (
        "name", "help", "labels", "bounds", "bucket_counts",
        "count", "sum", "max",
    )

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: LabelPairs = (),
        bounds: tuple[float, ...] | None = None,
    ):
        self.name = name
        self.help = help
        self.labels = labels
        self.bounds = tuple(bounds) if bounds is not None else LOG2_BOUNDS
        if list(self.bounds) != sorted(self.bounds) or not self.bounds:
            raise ValueError("histogram bounds must be sorted and non-empty")
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value > self.max:
            self.max = value

    # ----- readouts --------------------------------------------------------

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            seen += bucket_count
            if seen >= target and bucket_count:
                if index < len(self.bounds):
                    return min(self.bounds[index], self.max)
                return self.max
        return self.max

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Prometheus-style ``(le, cumulative count)`` rows, +Inf last."""
        rows: list[tuple[float, int]] = []
        running = 0
        for bound, bucket_count in zip(self.bounds, self.bucket_counts):
            running += bucket_count
            rows.append((bound, running))
        rows.append((float("inf"), self.count))
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Histogram({self.name}{dict(self.labels)} count={self.count} "
            f"p50={self.p50} p99={self.p99} max={self.max})"
        )


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """Get-or-create store of metrics, keyed by (name, labels).

    Re-asking for an existing (name, labels) pair returns the same
    object, so independent components naturally share totals; asking
    for an existing name with a different metric kind is an error.

    Registration and reads are guarded by a lock so a scrape thread
    (the admin HTTP server) never observes a half-registered metric
    while the engine thread is still creating metrics. Metric *updates*
    (``inc``/``set``/``observe``) stay lock-free — they are single
    attribute writes on the hot path, and scrapes tolerate the usual
    torn-read imprecision of live counters.
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelPairs], Metric] = {}
        self._kinds: dict[str, str] = {}
        self._lock = threading.Lock()

    # ----- get-or-create ---------------------------------------------------

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        bounds: tuple[float, ...] | None = None,
        **labels: str,
    ) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, Histogram):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}"
                    )
                return existing
            self._check_kind(name, "histogram")
            metric = Histogram(name, help, key[1], bounds)
            self._metrics[key] = metric
            return metric

    def _get_or_create(self, cls, name: str, help: str, labels: dict):
        key = (name, _label_key(labels))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}"
                    )
                return existing
            self._check_kind(name, cls.kind)
            metric = cls(name, help, key[1])
            self._metrics[key] = metric
            return metric

    def _check_kind(self, name: str, kind: str) -> None:
        registered = self._kinds.get(name)
        if registered is not None and registered != kind:
            raise ValueError(
                f"metric {name!r} already registered as {registered}, "
                f"cannot re-register as {kind}"
            )
        self._kinds[name] = kind

    # ----- reads -----------------------------------------------------------

    def metrics(self) -> Iterator[Metric]:
        """All metrics, grouped by name in registration order.

        The metric list is snapshotted under the lock before grouping,
        so concurrent registration cannot tear the iteration.
        """
        with self._lock:
            snapshot = list(self._metrics.values())
        by_name: dict[str, list[Metric]] = {}
        for metric in snapshot:
            by_name.setdefault(metric.name, []).append(metric)
        for group in by_name.values():
            yield from group

    def get(self, name: str, **labels: str) -> Metric | None:
        with self._lock:
            return self._metrics.get((name, _label_key(labels)))

    def value(self, name: str, default: float = 0.0, **labels: str) -> float:
        """Scalar value of a counter/gauge (missing metrics read 0)."""
        with self._lock:
            metric = self._metrics.get((name, _label_key(labels)))
        if metric is None or isinstance(metric, Histogram):
            return default
        return metric.value

    def flat(self) -> dict[str, float]:
        """One flat ``{name: value}`` map (``RunStats.extras`` food).

        Labelled series fold into ``name{k=v,...}`` keys; histograms
        expand to ``_count``/``_sum``/``_p50``/``_p95``/``_p99``/``_max``.
        """
        out: dict[str, float] = {}
        for metric in self.metrics():
            key = metric.name
            if metric.labels:
                rendered = ",".join(f"{k}={v}" for k, v in metric.labels)
                key = f"{key}{{{rendered}}}"
            if isinstance(metric, Histogram):
                out[f"{key}_count"] = float(metric.count)
                out[f"{key}_sum"] = metric.sum
                out[f"{key}_p50"] = metric.p50
                out[f"{key}_p95"] = metric.p95
                out[f"{key}_p99"] = metric.p99
                out[f"{key}_max"] = metric.max
            else:
                out[key] = metric.value
        return out

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()
            self._kinds.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)


# ----- cross-process snapshots ----------------------------------------------


def metric_state(metric: Metric) -> dict:
    """One metric as a plain picklable document (cross-process wire
    format).  Counters and gauges ship their value; histograms ship the
    raw bucket array plus count/sum/max so the receiving side can merge
    without losing quantile fidelity."""
    state: dict = {
        "name": metric.name,
        "kind": metric.kind,
        "help": metric.help,
        "labels": list(metric.labels),
    }
    if isinstance(metric, Histogram):
        state["bounds"] = list(metric.bounds)
        state["buckets"] = list(metric.bucket_counts)
        state["count"] = metric.count
        state["sum"] = metric.sum
        state["max"] = metric.max
    else:
        state["value"] = metric.value
    return state


def registry_state(registry: MetricsRegistry) -> list[dict]:
    """Snapshot every metric in the registry as :func:`metric_state`
    documents (what a shard worker ships over its control pipe)."""
    return [metric_state(metric) for metric in registry.metrics()]


class _SourceTracker:
    """Per-source monotonicity bookkeeping inside a SnapshotMerger.

    A remote process restarts with all-zero metrics, so raw shipped
    values *drop* across a revive. The tracker folds the last value
    seen from the previous process generation into a per-key base;
    the exported value is always ``base + raw`` — monotonic for
    counters and histogram buckets even across a SIGKILL.
    """

    __slots__ = (
        "generation", "counter_base", "counter_last",
        "hist_base", "hist_last",
    )

    def __init__(self, generation: int):
        self.generation = generation
        self.counter_base: dict = {}
        self.counter_last: dict = {}
        self.hist_base: dict = {}
        self.hist_last: dict = {}

    def fold(self) -> None:
        """Bank the last generation's raw values into the base."""
        for key, raw in self.counter_last.items():
            self.counter_base[key] = self.counter_base.get(key, 0.0) + raw
        self.counter_last.clear()
        for key, (buckets, count, total, peak) in self.hist_last.items():
            bb, bc, bs, bm = self.hist_base.get(key, ((), 0, 0.0, 0.0))
            if len(bb) != len(buckets):
                bb = [0] * len(buckets)
            self.hist_base[key] = (
                [x + y for x, y in zip(bb, buckets)],
                bc + count, bs + total, max(bm, peak),
            )
        self.hist_last.clear()


class SnapshotMerger:
    """Folds remote registry snapshots into a local registry under an
    extra identity label (``shard="N"`` by default).

    The merge is idempotent — re-ingesting the same snapshot writes the
    same absolute values — so callers can apply the latest shipped
    snapshot on every scrape without double counting. Pass the remote
    process *generation* (bumped on every restart) so counters stay
    monotonic across worker revives: when the generation changes, the
    last raw values of the dead process are folded into a base that all
    future exports add on top of.
    """

    def __init__(self, registry: MetricsRegistry, label: str = "shard"):
        self._registry = registry
        self._label = label
        self._lock = threading.Lock()
        self._sources: dict[str, _SourceTracker] = {}

    def sources(self) -> list[str]:
        with self._lock:
            return sorted(self._sources)

    def ingest(
        self, source: str, state: list[dict], generation: int = 0
    ) -> None:
        """Apply one source's snapshot into the local registry."""
        with self._lock:
            tracker = self._sources.get(source)
            if tracker is None:
                tracker = self._sources[source] = _SourceTracker(generation)
            elif generation != tracker.generation:
                tracker.fold()
                tracker.generation = generation
            for entry in state:
                try:
                    self._apply(source, tracker, entry)
                except (KeyError, TypeError, ValueError):
                    continue  # one malformed entry never breaks a scrape

    def _apply(
        self, source: str, tracker: _SourceTracker, entry: dict
    ) -> None:
        labels = dict(entry.get("labels") or ())
        labels[self._label] = source
        name = entry["name"]
        help_text = entry.get("help", "")
        kind = entry.get("kind", "gauge")
        key = (name, _label_key(labels))
        if kind == "counter":
            raw = float(entry.get("value", 0.0))
            tracker.counter_last[key] = raw
            metric = self._registry.counter(name, help_text, **labels)
            metric.value = tracker.counter_base.get(key, 0.0) + raw
        elif kind == "gauge":
            self._registry.gauge(name, help_text, **labels).value = float(
                entry.get("value", 0.0)
            )
        elif kind == "histogram":
            bounds = tuple(float(b) for b in entry.get("bounds") or ())
            metric = self._registry.histogram(
                name, help_text, bounds=bounds or None, **labels
            )
            buckets = [int(c) for c in entry.get("buckets") or ()]
            count = int(entry.get("count", 0))
            total = float(entry.get("sum", 0.0))
            peak = float(entry.get("max", 0.0))
            tracker.hist_last[key] = (list(buckets), count, total, peak)
            base = tracker.hist_base.get(key)
            if base is not None:
                bb, bc, bs, bm = base
                if len(bb) == len(buckets):
                    buckets = [x + y for x, y in zip(buckets, bb)]
                count += bc
                total += bs
                peak = max(peak, bm)
            if len(buckets) == len(metric.bucket_counts):
                metric.bucket_counts = buckets
            metric.count = count
            metric.sum = total
            metric.max = peak


class _NullCounter(Counter):
    """Shared no-op counter: ``inc`` does nothing."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set_max(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null")


class NullRegistry(MetricsRegistry):
    """Hands out shared no-op metrics; ``enabled`` is False.

    Instrumented constructors run unconditionally against this registry;
    per-event code checks ``registry.enabled`` once and skips the rest.
    """

    enabled = False

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return _NULL_GAUGE

    def histogram(
        self,
        name: str,
        help: str = "",
        bounds: tuple[float, ...] | None = None,
        **labels: str,
    ) -> Histogram:
        return _NULL_HISTOGRAM


NULL_REGISTRY = NullRegistry()

_default_registry: MetricsRegistry = NULL_REGISTRY


def get_default_registry() -> MetricsRegistry:
    """The process-global registry (the null registry until installed)."""
    return _default_registry


def set_default_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install (or, with ``None``, clear) the process-global registry.

    Returns the previous default so callers can restore it.
    """
    global _default_registry
    previous = _default_registry
    _default_registry = registry if registry is not None else NULL_REGISTRY
    return previous


def resolve_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """What an engine constructor does with its ``registry=`` argument."""
    return registry if registry is not None else _default_registry
