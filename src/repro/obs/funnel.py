"""Match-funnel instrumentation: where events die inside a query.

Every registration owns one funnel — six staged counters that follow an
event through the match pipeline::

    events_routed -> predicate_pass -> runs_extended -> runs_expired
                  -> negation_blocked -> matches_emitted

* ``events_routed`` — events of a type the query listens to that reached
  its executor (after routing, before predicate evaluation);
* ``predicate_pass`` — events that also passed the local predicate
  filter and were handed to the compiled runtime;
* ``runs_extended`` — counter updates the runtime performed (the
  A-Seq unit of work: one increment of one prefix counter);
* ``runs_expired`` — live counters dropped by window expiry;
* ``negation_blocked`` — counter resets forced by negated-type arrivals;
* ``matches_emitted`` — fresh aggregate outputs released on TRIG.

The stage *semantics* are pinned to the runtime's existing cost
accounting (``counter_updates``, expiry and reset totals), which PR 4's
differential suite already holds bit-identical across the per-event,
routed, vectorized, and sharded paths — so funnel counts are
path-invariant too, and the differential tests in
``tests/test_funnel.py`` assert exactly that.

Mechanically this module mirrors ``repro.obs.registry``'s null-object
pattern: engines accept ``funnel=None``, resolve it through
:func:`resolve_funnel`, cache ``funnel.enabled`` plus a per-query
:class:`QueryFunnel` handle at construction, and pay one boolean check
per event when the funnel is off. The stage counters are ordinary
labelled registry metrics (``repro_funnel_*_total{query=...}``), so on
the sharded path they ride the existing worker snapshot shipment and
merge through :class:`~repro.obs.registry.SnapshotMerger` with no new
wire format; :func:`funnel_rows` re-aggregates the per-shard series.
"""

from __future__ import annotations

import threading
from typing import Iterable

from repro.obs.registry import (
    Histogram,
    MetricsRegistry,
    _NULL_COUNTER,
    _NULL_GAUGE,
    _NULL_HISTOGRAM,
    resolve_registry,
)

#: Funnel stages in pipeline order (renderers and docs iterate this).
STAGES: tuple[str, ...] = (
    "events_routed",
    "predicate_pass",
    "runs_extended",
    "runs_expired",
    "negation_blocked",
    "matches_emitted",
)

#: Stages that get sampled wall-clock latency histograms.
LATENCY_STAGES: tuple[str, ...] = ("predicate", "extend")

_STAGE_HELP = {
    "events_routed": "Relevant-typed events that reached the executor",
    "predicate_pass": "Events that passed local predicates",
    "runs_extended": "Prefix-counter updates performed",
    "runs_expired": "Live counters dropped by window expiry",
    "negation_blocked": "Counter resets forced by negated events",
    "matches_emitted": "Fresh aggregate outputs released on TRIG",
}

#: Histogram bounds for sampled stage latencies (microseconds).
_LATENCY_BOUNDS = tuple(float(2 ** i) for i in range(18))


class QueryFunnel:
    """Live metric handles for one query's funnel.

    The attributes are registry metrics shared through the registry's
    get-or-create semantics: every component instrumenting the same
    query name (the executor, its nested HPC partition engines, a
    re-registration after recovery) updates the same objects.
    """

    __slots__ = (
        "query", "routed", "passed", "extended", "expired", "blocked",
        "emitted", "first_ts", "last_ts", "latency",
        "sample_every", "_tick", "_ts_seen",
    )

    def __init__(
        self, query: str, registry: MetricsRegistry, sample_every: int
    ):
        self.query = query
        self.routed = registry.counter(
            "repro_funnel_events_routed_total",
            _STAGE_HELP["events_routed"], query=query,
        )
        self.passed = registry.counter(
            "repro_funnel_predicate_pass_total",
            _STAGE_HELP["predicate_pass"], query=query,
        )
        self.extended = registry.counter(
            "repro_funnel_runs_extended_total",
            _STAGE_HELP["runs_extended"], query=query,
        )
        self.expired = registry.counter(
            "repro_funnel_runs_expired_total",
            _STAGE_HELP["runs_expired"], query=query,
        )
        self.blocked = registry.counter(
            "repro_funnel_negation_blocked_total",
            _STAGE_HELP["negation_blocked"], query=query,
        )
        self.emitted = registry.counter(
            "repro_funnel_matches_emitted_total",
            _STAGE_HELP["matches_emitted"], query=query,
        )
        self.first_ts = registry.gauge(
            "repro_funnel_first_event_ms",
            "Event time of the first routed event", query=query,
        )
        self.last_ts = registry.gauge(
            "repro_funnel_last_event_ms",
            "Event time of the last routed event", query=query,
        )
        self.latency = {
            stage: registry.histogram(
                "repro_funnel_stage_latency_us",
                "Sampled wall-clock cost per funnel stage (us)",
                bounds=_LATENCY_BOUNDS, query=query, stage=stage,
            )
            for stage in LATENCY_STAGES
        }
        self.sample_every = max(1, int(sample_every))
        self._tick = 0
        self._ts_seen = False

    def note_ts(self, ts: float) -> None:
        """Record event-time span (first ts once, last ts as high-water)."""
        if not self._ts_seen:
            self._ts_seen = True
            self.first_ts.set(ts)
        self.last_ts.set_max(ts)

    def bump_routed(self, ts: float) -> bool:
        """Per-event hot path: routed count + span + sampler, one call.

        Folds ``routed.inc(); note_ts(ts); sample_due()`` into a single
        method call with direct attribute arithmetic — the per-event
        funnel cost budget (<10%, ``bench_funnel_overhead``) does not
        survive three extra calls per routed event. Returns True when
        this event's stage latencies should be sampled.
        """
        self.routed.value += 1.0
        if not self._ts_seen:
            self._ts_seen = True
            self.first_ts.set(ts)
        last = self.last_ts
        if ts > last.value:
            last.value = ts
        self._tick += 1
        if self._tick >= self.sample_every:
            self._tick = 0
            return True
        return False

    def sample_due(self) -> bool:
        """Tick the shared sampler; True every ``sample_every`` calls."""
        self._tick += 1
        if self._tick >= self.sample_every:
            self._tick = 0
            return True
        return False

    def counts(self) -> dict[str, int]:
        """Stage totals as a plain dict (test and profile food)."""
        return {
            "events_routed": int(self.routed.value),
            "predicate_pass": int(self.passed.value),
            "runs_extended": int(self.extended.value),
            "runs_expired": int(self.expired.value),
            "negation_blocked": int(self.blocked.value),
            "matches_emitted": int(self.emitted.value),
        }

    def snapshot(self) -> dict:
        """Counts plus the observed event-time span (drift-model food)."""
        row: dict = self.counts()
        seen = self._ts_seen and self.routed.value > 0
        row["first_event_ms"] = self.first_ts.value if seen else None
        row["last_event_ms"] = self.last_ts.value if seen else None
        return row


class _NullQueryFunnel(QueryFunnel):
    """Shared no-op handle: all metrics are the null singletons."""

    __slots__ = ()

    def __init__(self):  # noqa: D107 - bypass parent registration
        self.query = ""
        self.routed = _NULL_COUNTER
        self.passed = _NULL_COUNTER
        self.extended = _NULL_COUNTER
        self.expired = _NULL_COUNTER
        self.blocked = _NULL_COUNTER
        self.emitted = _NULL_COUNTER
        self.first_ts = _NULL_GAUGE
        self.last_ts = _NULL_GAUGE
        self.latency = {stage: _NULL_HISTOGRAM for stage in LATENCY_STAGES}
        self.sample_every = 1 << 30
        self._tick = 0
        self._ts_seen = True

    def note_ts(self, ts: float) -> None:
        pass

    def bump_routed(self, ts: float) -> bool:
        return False

    def sample_due(self) -> bool:
        return False


class FunnelRecorder:
    """Hands out per-query :class:`QueryFunnel` handles.

    Pass the metrics registry the rest of the process exports through so
    funnel series appear in ``/metrics`` and — on the sharded path —
    ship inside the existing worker snapshots. When the resolved
    registry is disabled the recorder falls back to a private one, so an
    explicitly constructed funnel always records.
    """

    enabled = True

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        sample_every: int = 64,
    ):
        resolved = resolve_registry(registry)
        self.registry = resolved if resolved.enabled else MetricsRegistry()
        self.sample_every = max(1, int(sample_every))
        self._handles: dict[str, QueryFunnel] = {}
        self._lock = threading.Lock()

    def for_query(self, query: str) -> QueryFunnel:
        """Get-or-create the handle for ``query`` (constructor-time call)."""
        with self._lock:
            handle = self._handles.get(query)
            if handle is None:
                handle = QueryFunnel(query, self.registry, self.sample_every)
                self._handles[query] = handle
            return handle

    def query_names(self) -> list[str]:
        with self._lock:
            return sorted(self._handles)


class NullFunnel(FunnelRecorder):
    """Hands out the shared no-op handle; ``enabled`` is False."""

    enabled = False

    def __init__(self):  # noqa: D107 - no registry, no state
        self._handle = _NullQueryFunnel()

    def for_query(self, query: str) -> QueryFunnel:
        return self._handle

    def query_names(self) -> list[str]:
        return []


NULL_FUNNEL = NullFunnel()

_default_funnel: FunnelRecorder = NULL_FUNNEL


def get_default_funnel() -> FunnelRecorder:
    """The process-global funnel (the null funnel until installed)."""
    return _default_funnel


def set_default_funnel(funnel: FunnelRecorder | None) -> FunnelRecorder:
    """Install (or, with ``None``, clear) the process-global funnel.

    Returns the previous default so callers can restore it.
    """
    global _default_funnel
    previous = _default_funnel
    _default_funnel = funnel if funnel is not None else NULL_FUNNEL
    return previous


def resolve_funnel(funnel: FunnelRecorder | None) -> FunnelRecorder:
    """What an engine constructor does with its ``funnel=`` argument."""
    return funnel if funnel is not None else _default_funnel


# ----- aggregation across shard labels ---------------------------------------


def funnel_rows(registry: MetricsRegistry) -> list[dict]:
    """Per-query funnel rows aggregated over every other label.

    On a single-process engine each query has one series per stage and
    the row is a straight read. On the sharded path the router registry
    holds one series per ``shard=`` label (merged worker snapshots) plus
    the unlabelled local-lane series; counters sum, the first-event
    gauge takes the min over shards that actually routed events, the
    last-event gauge the max.
    """
    # (query, residual-labels) -> {stage: value}; residual labels are
    # everything but ``query`` (the shard label, in practice), so values
    # from one shard stay correlated while folding.
    sub_rows: dict[tuple[str, tuple], dict] = {}
    latencies: dict[str, dict[str, list[Histogram]]] = {}
    for metric in registry.metrics():
        if not metric.name.startswith("repro_funnel_"):
            continue
        labels = dict(metric.labels)
        query = labels.pop("query", None)
        if query is None:
            continue
        if isinstance(metric, Histogram):
            stage = labels.pop("stage", "")
            latencies.setdefault(query, {}).setdefault(stage, []).append(
                metric
            )
            continue
        key = (query, tuple(sorted(labels.items())))
        sub_rows.setdefault(key, {})[metric.name] = metric.value

    per_query: dict[str, list[dict]] = {}
    for (query, _residual), values in sub_rows.items():
        per_query.setdefault(query, []).append(values)

    rows = []
    for query in sorted(per_query):
        row: dict = {"query": query}
        parts = per_query[query]
        stage_names = {
            "events_routed": "repro_funnel_events_routed_total",
            "predicate_pass": "repro_funnel_predicate_pass_total",
            "runs_extended": "repro_funnel_runs_extended_total",
            "runs_expired": "repro_funnel_runs_expired_total",
            "negation_blocked": "repro_funnel_negation_blocked_total",
            "matches_emitted": "repro_funnel_matches_emitted_total",
        }
        for stage, metric_name in stage_names.items():
            row[stage] = int(sum(p.get(metric_name, 0.0) for p in parts))
        # Event-time span: only shards that routed at least one event
        # have meaningful first/last gauges.
        active = [
            p for p in parts
            if p.get("repro_funnel_events_routed_total", 0.0) > 0
        ]
        firsts = [p.get("repro_funnel_first_event_ms", 0.0) for p in active]
        lasts = [p.get("repro_funnel_last_event_ms", 0.0) for p in active]
        row["first_event_ms"] = min(firsts) if firsts else None
        row["last_event_ms"] = max(lasts) if lasts else None
        row["stage_latency_us"] = _fold_latency(latencies.get(query, {}))
        rows.append(row)
    return rows


def _fold_latency(per_stage: dict[str, list[Histogram]]) -> dict:
    out = {}
    for stage, hists in sorted(per_stage.items()):
        count = sum(h.count for h in hists)
        if not count:
            continue
        out[stage] = {
            "count": count,
            "mean_us": sum(h.sum for h in hists) / count,
            # Max of per-shard p95s: an upper bound, exact when there is
            # a single series (the unsharded case).
            "p95_us": max(h.p95 for h in hists),
        }
    return out


def funnel_totals(rows: Iterable[dict]) -> dict[str, int]:
    """Fold a set of :func:`funnel_rows` into whole-engine stage totals."""
    totals = {stage: 0 for stage in STAGES}
    for row in rows:
        for stage in STAGES:
            totals[stage] += int(row.get(stage, 0))
    return totals


__all__ = [
    "STAGES",
    "LATENCY_STAGES",
    "QueryFunnel",
    "FunnelRecorder",
    "NullFunnel",
    "NULL_FUNNEL",
    "get_default_funnel",
    "set_default_funnel",
    "resolve_funnel",
    "funnel_rows",
    "funnel_totals",
]
