"""Time-series history rings: trends for the ops plane, not instants.

A scrape of ``/metrics`` answers "what is the ingest rate *now*"; an
operator staring at a wedged shard wants "what was it over the last two
minutes". :class:`HistoryRecorder` closes that gap without external
infrastructure: a daemon thread samples a configurable set of series
out of a :class:`~repro.obs.registry.MetricsRegistry` at a fixed
cadence into fixed-size ring buffers, and the admin server exposes the
rings as ``/dashboard.json`` (plus a plain-text sparkline view at
``/dashboard``).

Three sampling modes cover the catalogue:

* ``gauge`` — the metric's current value (works for counters too, when
  the running total itself is the interesting series);
* ``rate`` — the per-second delta of a counter between samples (ingest
  rate from ``events_ingested_total``);
* ``quantile`` — a derived histogram quantile (per-query p99 latency).

A tracked name with no explicit labels is a *wildcard*: every labeled
series of that name gets its own ring, and series appearing later
(a shard revive re-registering, a new query) are picked up on the next
sample. Memory stays bounded: ``capacity`` points per ring.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable

from repro.obs.registry import Histogram, LabelPairs, MetricsRegistry

_MODES = ("gauge", "rate", "quantile")


class _Ring:
    """One bounded series: parallel (time, value) deques."""

    __slots__ = ("times", "values")

    def __init__(self, capacity: int):
        self.times: deque[float] = deque(maxlen=capacity)
        self.values: deque[float] = deque(maxlen=capacity)

    def append(self, when: float, value: float) -> None:
        self.times.append(when)
        self.values.append(value)


class _SeriesSpec:
    __slots__ = ("alias", "metric", "mode", "labels", "quantile")

    def __init__(
        self,
        alias: str,
        metric: str,
        mode: str,
        labels: dict[str, str] | None,
        quantile: float,
    ):
        self.alias = alias
        self.metric = metric
        self.mode = mode
        self.labels = labels
        self.quantile = quantile


class HistoryRecorder:
    """Samples registry series into ring buffers at a fixed cadence.

    Use :meth:`track` to declare series, then either :meth:`start` the
    sampling thread or call :meth:`sample` manually (tests pass an
    explicit ``now`` through a deterministic ``clock``).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        interval_s: float = 1.0,
        capacity: int = 240,
        clock: Callable[[], float] = time.time,
    ):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if capacity < 2:
            raise ValueError("capacity must be at least 2")
        self._registry = registry
        self.interval_s = interval_s
        self.capacity = capacity
        self._clock = clock
        self._specs: list[_SeriesSpec] = []
        self._rings: dict[tuple[str, LabelPairs], _Ring] = {}
        #: For ``rate`` mode: last raw (time, value) per ring key.
        self._prev: dict[tuple[str, LabelPairs], tuple[float, float]] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.samples_taken = 0
        self._refresher: Callable[[], None] | None = None

    # ----- configuration ----------------------------------------------------

    def track(
        self,
        metric: str,
        mode: str = "gauge",
        alias: str | None = None,
        quantile: float = 0.99,
        **labels: str,
    ) -> "HistoryRecorder":
        """Declare one tracked series (chainable).

        With no ``labels`` the name is a wildcard over every labeled
        series of that metric; with labels only the exact series is
        sampled.
        """
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if not 0.0 < quantile <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        if alias is None:
            alias = metric
            if mode == "rate":
                alias = f"{metric}_rate"
            elif mode == "quantile":
                alias = f"{metric}_p{int(round(quantile * 100))}"
        with self._lock:
            self._specs.append(
                _SeriesSpec(alias, metric, mode, labels or None, quantile)
            )
        return self

    def set_refresher(self, refresher: Callable[[], None] | None) -> None:
        """Hook run before each sample (chainable from the engine side).

        Pull-based gauges (``query_live_objects``,
        ``query_cc_snapshot_rows``, drift) are only recomputed on
        scrape; the sampling thread needs them recomputed on *its*
        cadence too, so the CLI installs
        ``engine.refresh_cost_metrics`` here.
        """
        self._refresher = refresher

    # ----- lifecycle --------------------------------------------------------

    def start(self) -> "HistoryRecorder":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="obs-history", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=self.interval_s * 2 + 1.0)
            self._thread = None

    def __enter__(self) -> "HistoryRecorder":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.sample()
            except Exception:  # defensive: sampling never kills the thread
                pass

    # ----- sampling ---------------------------------------------------------

    def sample(self, now: float | None = None) -> None:
        """Take one sample of every tracked series."""
        refresher = self._refresher
        if refresher is not None:
            try:
                refresher()
            except Exception:
                pass  # sampling proceeds on whatever values exist
        when = self._clock() if now is None else now
        with self._lock:
            for spec in self._specs:
                for metric in self._matching(spec):
                    value = self._value_of(spec, metric, when)
                    if value is None:
                        continue
                    key = (spec.alias, metric.labels)
                    ring = self._rings.get(key)
                    if ring is None:
                        ring = self._rings[key] = _Ring(self.capacity)
                    ring.append(when, value)
            self.samples_taken += 1

    def _matching(self, spec: _SeriesSpec) -> list[Any]:
        if spec.labels is not None:
            metric = self._registry.get(spec.metric, **spec.labels)
            return [] if metric is None else [metric]
        return [
            metric
            for metric in self._registry.metrics()
            if metric.name == spec.metric
        ]

    def _value_of(
        self, spec: _SeriesSpec, metric: Any, when: float
    ) -> float | None:
        if spec.mode == "quantile":
            if not isinstance(metric, Histogram):
                return None
            return metric.quantile(spec.quantile)
        if isinstance(metric, Histogram):
            return None
        if spec.mode == "gauge":
            return float(metric.value)
        # rate: per-second counter delta; the first sample only primes
        # the previous value, and a reset (merged registry rebuilding)
        # clamps to zero rather than reporting a negative rate.
        key = (spec.alias, metric.labels)
        raw = float(metric.value)
        previous = self._prev.get(key)
        self._prev[key] = (when, raw)
        if previous is None:
            return None
        prev_when, prev_raw = previous
        elapsed = when - prev_when
        if elapsed <= 0:
            return None
        return max(0.0, raw - prev_raw) / elapsed

    # ----- reads ------------------------------------------------------------

    def growth_alarms(
        self,
        aliases: tuple[str, ...] = (
            "query_live_objects",
            "query_cc_snapshot_rows",
        ),
        ratio: float = 2.0,
        min_delta: float = 64.0,
        min_points: int = 8,
    ) -> list[dict[str, Any]]:
        """Slope-based state-growth alarms over the sampled rings.

        A ring alarms when its recent level (mean of the last quarter)
        exceeds its early level (mean of the first quarter) by both
        ``ratio``× and ``min_delta`` absolute — sustained growth, not a
        burst: a healthy windowed query's live state plateaus once the
        first window fills, so a ring that keeps climbing across the
        whole history is leaking (an unexpired window, an unbounded
        GROUP BY key space, a stuck Chop-Connect snapshot table).
        """
        alarms = []
        with self._lock:
            for (alias, labels), ring in self._rings.items():
                if alias not in aliases or len(ring.values) < min_points:
                    continue
                values = list(ring.values)
                times = list(ring.times)
                quarter = max(1, len(values) // 4)
                early = sum(values[:quarter]) / quarter
                late = sum(values[-quarter:]) / quarter
                delta = late - early
                if delta < min_delta or late < ratio * max(early, 1.0):
                    continue
                elapsed = times[-1] - times[0]
                alarms.append(
                    {
                        "series": alias,
                        "labels": dict(labels),
                        "early": early,
                        "late": late,
                        "slope_per_s": (
                            delta / elapsed if elapsed > 0 else None
                        ),
                        "points": len(values),
                    }
                )
        return alarms

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready dump of every ring (the ``/dashboard.json`` body)."""
        with self._lock:
            series = [
                {
                    "name": alias,
                    "labels": dict(labels),
                    "points": [
                        [round(when, 3), value]
                        for when, value in zip(ring.times, ring.values)
                    ],
                }
                for (alias, labels), ring in self._rings.items()
            ]
            return {
                "interval_s": self.interval_s,
                "capacity": self.capacity,
                "samples": self.samples_taken,
                "series": series,
            }


def default_history(
    registry: MetricsRegistry,
    interval_s: float = 1.0,
    capacity: int = 240,
    clock: Callable[[], float] = time.time,
) -> HistoryRecorder:
    """The stock dashboard series set (what ``--history-every`` wires):
    ingest rate, event-time lag, DLQ depth, per-shard heartbeat age,
    per-query p99 latency, the per-query state watermarks the growth
    alarm watches, and the funnel's routed/emitted rates."""
    history = HistoryRecorder(
        registry, interval_s=interval_s, capacity=capacity, clock=clock
    )
    history.track("events_ingested_total", mode="rate", alias="ingest_rate")
    history.track(
        "repro_event_time_lag_seconds", mode="gauge", alias="event_time_lag_s"
    )
    history.track("dlq_depth", mode="gauge")
    history.track("repro_shard_heartbeat_age_seconds", mode="gauge")
    history.track("query_latency_us", mode="quantile", quantile=0.99)
    # State watermarks feeding growth_alarms(); sampled as levels.
    history.track("query_live_objects", mode="gauge")
    history.track("query_cc_snapshot_rows", mode="gauge")
    # Funnel throughput per query (flat when the funnel is off).
    history.track(
        "repro_funnel_events_routed_total", mode="rate",
        alias="funnel_routed_rate",
    )
    history.track(
        "repro_funnel_matches_emitted_total", mode="rate",
        alias="funnel_match_rate",
    )
    return history
