"""Observability: metrics registry, event-lifecycle tracing, exporters.

The engines accept an optional :class:`MetricsRegistry` (and, where it
makes sense, a :class:`TraceRecorder`). When none is given they fall
back to the process-global default — the :data:`NULL_REGISTRY` unless
something (the CLI's ``--metrics-out``, a bench harness, a test)
installed a real one — so instrumentation costs one boolean check per
event when disabled.

See ``docs/OBSERVABILITY.md`` for the metric catalogue and naming
conventions.
"""

from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_default_registry,
    resolve_registry,
    set_default_registry,
)
from repro.obs.tracing import (
    NULL_TRACER,
    Span,
    Stage,
    TraceRecorder,
    resolve_tracer,
)
from repro.obs.export import (
    registry_snapshot,
    to_prometheus,
    write_json_snapshot,
    write_prometheus,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_default_registry",
    "set_default_registry",
    "resolve_registry",
    "Span",
    "Stage",
    "TraceRecorder",
    "NULL_TRACER",
    "resolve_tracer",
    "registry_snapshot",
    "to_prometheus",
    "write_json_snapshot",
    "write_prometheus",
]
