"""Observability: metrics registry, event-lifecycle tracing, exporters.

The engines accept an optional :class:`MetricsRegistry` (and, where it
makes sense, a :class:`TraceRecorder`). When none is given they fall
back to the process-global default — the :data:`NULL_REGISTRY` unless
something (the CLI's ``--metrics-out``, a bench harness, a test)
installed a real one — so instrumentation costs one boolean check per
event when disabled.

On top of the passive instrumentation sit the live ops plane pieces:
:class:`AdminServer` (an embedded admin HTTP endpoint serving
``/metrics``, ``/healthz``, ``/queries``, ...), the :mod:`engine
introspection helpers <repro.obs.inspect>` behind it, and the
rate-limited structured logger of :mod:`repro.obs.logging`.

See ``docs/OBSERVABILITY.md`` for the metric catalogue, the endpoint
catalogue, and naming conventions.
"""

from repro.obs.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    SnapshotMerger,
    get_default_registry,
    metric_state,
    registry_state,
    resolve_registry,
    set_default_registry,
)
from repro.obs.tracing import (
    NULL_TRACER,
    Span,
    Stage,
    TraceRecorder,
    resolve_tracer,
    stitch_spans,
)
from repro.obs.export import (
    registry_snapshot,
    render_sparklines,
    to_prometheus,
    write_json_snapshot,
    write_prometheus,
)
from repro.obs.history import HistoryRecorder, default_history
from repro.obs.funnel import (
    NULL_FUNNEL,
    FunnelRecorder,
    NullFunnel,
    QueryFunnel,
    funnel_rows,
    funnel_totals,
    get_default_funnel,
    resolve_funnel,
    set_default_funnel,
)
from repro.obs.explain import (
    drift_from_counts,
    drift_from_funnel,
    explain_engine,
    explain_query,
    render_explain,
)
from repro.obs.workload_profile import (
    build_workload_profile,
    load_workload_profile,
    write_workload_profile,
)
from repro.obs.profile import SamplingProfiler, collapsed_text
from repro.obs.inspect import (
    cost_summary,
    engine_inspect,
    health_snapshot,
    query_rows,
    state_of,
)
from repro.obs.logging import (
    LogConfig,
    StructLogger,
    configure,
    get_logger,
    install_config,
)
from repro.obs.server import AdminServer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_default_registry",
    "set_default_registry",
    "resolve_registry",
    "Span",
    "Stage",
    "TraceRecorder",
    "NULL_TRACER",
    "resolve_tracer",
    "SnapshotMerger",
    "metric_state",
    "registry_state",
    "stitch_spans",
    "registry_snapshot",
    "render_sparklines",
    "to_prometheus",
    "write_json_snapshot",
    "write_prometheus",
    "HistoryRecorder",
    "default_history",
    "FunnelRecorder",
    "NullFunnel",
    "NULL_FUNNEL",
    "QueryFunnel",
    "funnel_rows",
    "funnel_totals",
    "get_default_funnel",
    "set_default_funnel",
    "resolve_funnel",
    "explain_engine",
    "explain_query",
    "render_explain",
    "drift_from_funnel",
    "drift_from_counts",
    "build_workload_profile",
    "write_workload_profile",
    "load_workload_profile",
    "SamplingProfiler",
    "collapsed_text",
    "AdminServer",
    "LogConfig",
    "StructLogger",
    "configure",
    "get_logger",
    "install_config",
    "cost_summary",
    "engine_inspect",
    "health_snapshot",
    "query_rows",
    "state_of",
]
