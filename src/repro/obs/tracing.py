"""Span-based event-lifecycle tracing.

A :class:`TraceRecorder` is a fixed-capacity ring buffer of
:class:`Span` records covering the life of an event inside an engine:

``ingest`` → ``filter_drop`` / ``counter_update`` → ``counter_create``
/ ``recount_reset`` / ``expire`` → ``emit``

The recorder exists to debug *wrong counts* — "why did this TRIG report
7?" — so spans carry the engine clock, the event type, and a free-form
detail string, and the dump format (``--trace`` on the CLI) is a plain
aligned text table that reads top-to-bottom as the event flow.

Recording is guarded the same way metrics are: the shared
:data:`NULL_TRACER` reports ``enabled = False`` and hot paths check that
one boolean before building a span.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable


class Stage:
    """Span stage names (plain strings; a class only for namespacing)."""

    INGEST = "ingest"
    FILTER_DROP = "filter_drop"
    COUNTER_CREATE = "counter_create"
    COUNTER_UPDATE = "counter_update"
    RECOUNT_RESET = "recount_reset"
    EXPIRE = "expire"
    SNAPSHOT = "snapshot"
    PARTITION_CREATE = "partition_create"
    EMIT = "emit"
    JOURNAL = "journal"
    CHECKPOINT = "checkpoint"
    RECOVER = "recover"
    DEAD_LETTER = "dead_letter"
    QUARANTINE = "quarantine"
    # Cross-process stages (sharded engine): a sampled event's trace id
    # ties a router-side ROUTE span to the worker-side SHARD_INGEST
    # span and the router-side MERGE span.
    ROUTE = "route"
    SHARD_INGEST = "shard_ingest"
    MERGE = "merge"
    # Supervision lifecycle stages, so recovery shows up in /trace.
    SHARD_REVIVE = "shard_revive"
    SHARD_DEGRADE = "shard_degrade"
    SINK_RETRY = "sink_retry"
    SINK_DEAD_LETTER = "sink_dead_letter"

    ALL = (
        INGEST, FILTER_DROP, COUNTER_CREATE, COUNTER_UPDATE,
        RECOUNT_RESET, EXPIRE, SNAPSHOT, PARTITION_CREATE, EMIT,
        JOURNAL, CHECKPOINT, RECOVER, DEAD_LETTER, QUARANTINE,
        ROUTE, SHARD_INGEST, MERGE, SHARD_REVIVE, SHARD_DEGRADE,
        SINK_RETRY, SINK_DEAD_LETTER,
    )


class Span:
    """One recorded lifecycle step.

    ``trace_id`` is empty for ordinary in-process spans; the sharded
    engine stamps a sampled id onto ROUTE/SHARD_INGEST/MERGE spans so
    one event's hops can be stitched back together across processes.
    ``wall`` is the wall-clock time of recording (0.0 when untimed) —
    cross-process span ordering cannot use per-process seq numbers.
    """

    __slots__ = ("seq", "ts", "stage", "event_type", "detail",
                 "trace_id", "wall")

    def __init__(
        self,
        seq: int,
        ts: int,
        stage: str,
        event_type: str,
        detail: str,
        trace_id: str = "",
        wall: float = 0.0,
    ):
        self.seq = seq
        self.ts = ts
        self.stage = stage
        self.event_type = event_type
        self.detail = detail
        self.trace_id = trace_id
        self.wall = wall

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span(#{self.seq} t={self.ts} {self.stage} "
            f"{self.event_type} {self.detail})"
        )


class TraceRecorder:
    """Ring buffer of spans; old spans fall off the front when full."""

    enabled = True

    def __init__(self, capacity: int = 1024):
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self.capacity = capacity
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._seq = 0

    def record(
        self,
        stage: str,
        ts: int = 0,
        event_type: str = "",
        detail: str = "",
        trace_id: str = "",
        wall: float = 0.0,
    ) -> None:
        self._seq += 1
        self._spans.append(
            Span(self._seq, ts, stage, event_type, detail, trace_id, wall)
        )

    # ----- reads -----------------------------------------------------------

    @property
    def recorded_total(self) -> int:
        """Spans ever recorded (≥ ``len`` once the ring wraps)."""
        return self._seq

    def spans(self, stage: str | None = None) -> list[Span]:
        if stage is None:
            return list(self._spans)
        return [span for span in self._spans if span.stage == stage]

    def clear(self) -> None:
        self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)

    # ----- dump format -----------------------------------------------------

    def format(self, last: int | None = None) -> str:
        """The ``--trace`` dump: one aligned line per span.

        ::

            seq      ts  stage           type  detail
            #41      72  recount_reset   N     reset slot 1 in 3 counters
        """
        spans: Iterable[Span] = self._spans
        if last is not None:
            spans = list(self._spans)[-last:]
        lines = [f"{'seq':>8}  {'ts':>10}  {'stage':<16}{'type':<10}detail"]
        for span in spans:
            lines.append(
                f"#{span.seq:<7}  {span.ts:>10}  {span.stage:<16}"
                f"{span.event_type:<10}{span.detail}"
            )
        dropped = self._seq - len(self._spans)
        if dropped > 0:
            lines.append(
                f"... ring buffer kept the last {len(self._spans)} of "
                f"{self._seq} spans ({dropped} dropped)"
            )
        return "\n".join(lines)


class NullTraceRecorder(TraceRecorder):
    """Shared no-op recorder; ``enabled`` is False."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def record(
        self,
        stage: str,
        ts: int = 0,
        event_type: str = "",
        detail: str = "",
        trace_id: str = "",
        wall: float = 0.0,
    ) -> None:
        pass


NULL_TRACER = NullTraceRecorder()


def resolve_tracer(trace: TraceRecorder | None) -> TraceRecorder:
    """What an engine constructor does with its ``trace=`` argument."""
    return trace if trace is not None else NULL_TRACER


#: Canonical ordering of the cross-process stages inside one trace.
_STITCH_ORDER = {Stage.ROUTE: 0, Stage.SHARD_INGEST: 1, Stage.MERGE: 2}


def stitch_spans(spans: Iterable[dict]) -> list[dict]:
    """Group span dicts by trace id into router→shard→merge chains.

    Input spans are plain dicts (the ``/trace`` wire shape) carrying at
    least ``stage`` and ``trace_id``; spans without a trace id are
    skipped. Within one trace, spans sort by the canonical stage order
    first and skew-corrected wall time second — per-process sequence
    numbers do not order across processes. A chain is ``complete`` when
    all three cross-process stages are present.
    """
    groups: dict[str, list[dict]] = {}
    for span in spans:
        trace_id = span.get("trace_id")
        if trace_id:
            groups.setdefault(trace_id, []).append(span)
    stitched = []
    for trace_id, group in groups.items():
        group.sort(
            key=lambda span: (
                _STITCH_ORDER.get(span.get("stage"), 99),
                span.get("wall") or 0.0,
            )
        )
        stages = [span.get("stage") for span in group]
        stitched.append(
            {
                "trace_id": trace_id,
                "stages": stages,
                "complete": (
                    {Stage.ROUTE, Stage.SHARD_INGEST, Stage.MERGE}
                    <= set(stages)
                ),
                "spans": group,
            }
        )
    return stitched
