"""Span-based event-lifecycle tracing.

A :class:`TraceRecorder` is a fixed-capacity ring buffer of
:class:`Span` records covering the life of an event inside an engine:

``ingest`` → ``filter_drop`` / ``counter_update`` → ``counter_create``
/ ``recount_reset`` / ``expire`` → ``emit``

The recorder exists to debug *wrong counts* — "why did this TRIG report
7?" — so spans carry the engine clock, the event type, and a free-form
detail string, and the dump format (``--trace`` on the CLI) is a plain
aligned text table that reads top-to-bottom as the event flow.

Recording is guarded the same way metrics are: the shared
:data:`NULL_TRACER` reports ``enabled = False`` and hot paths check that
one boolean before building a span.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable


class Stage:
    """Span stage names (plain strings; a class only for namespacing)."""

    INGEST = "ingest"
    FILTER_DROP = "filter_drop"
    COUNTER_CREATE = "counter_create"
    COUNTER_UPDATE = "counter_update"
    RECOUNT_RESET = "recount_reset"
    EXPIRE = "expire"
    SNAPSHOT = "snapshot"
    PARTITION_CREATE = "partition_create"
    EMIT = "emit"
    JOURNAL = "journal"
    CHECKPOINT = "checkpoint"
    RECOVER = "recover"
    DEAD_LETTER = "dead_letter"
    QUARANTINE = "quarantine"

    ALL = (
        INGEST, FILTER_DROP, COUNTER_CREATE, COUNTER_UPDATE,
        RECOUNT_RESET, EXPIRE, SNAPSHOT, PARTITION_CREATE, EMIT,
        JOURNAL, CHECKPOINT, RECOVER, DEAD_LETTER, QUARANTINE,
    )


class Span:
    """One recorded lifecycle step."""

    __slots__ = ("seq", "ts", "stage", "event_type", "detail")

    def __init__(
        self, seq: int, ts: int, stage: str, event_type: str, detail: str
    ):
        self.seq = seq
        self.ts = ts
        self.stage = stage
        self.event_type = event_type
        self.detail = detail

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span(#{self.seq} t={self.ts} {self.stage} "
            f"{self.event_type} {self.detail})"
        )


class TraceRecorder:
    """Ring buffer of spans; old spans fall off the front when full."""

    enabled = True

    def __init__(self, capacity: int = 1024):
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self.capacity = capacity
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._seq = 0

    def record(
        self,
        stage: str,
        ts: int = 0,
        event_type: str = "",
        detail: str = "",
    ) -> None:
        self._seq += 1
        self._spans.append(Span(self._seq, ts, stage, event_type, detail))

    # ----- reads -----------------------------------------------------------

    @property
    def recorded_total(self) -> int:
        """Spans ever recorded (≥ ``len`` once the ring wraps)."""
        return self._seq

    def spans(self, stage: str | None = None) -> list[Span]:
        if stage is None:
            return list(self._spans)
        return [span for span in self._spans if span.stage == stage]

    def clear(self) -> None:
        self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)

    # ----- dump format -----------------------------------------------------

    def format(self, last: int | None = None) -> str:
        """The ``--trace`` dump: one aligned line per span.

        ::

            seq      ts  stage           type  detail
            #41      72  recount_reset   N     reset slot 1 in 3 counters
        """
        spans: Iterable[Span] = self._spans
        if last is not None:
            spans = list(self._spans)[-last:]
        lines = [f"{'seq':>8}  {'ts':>10}  {'stage':<16}{'type':<10}detail"]
        for span in spans:
            lines.append(
                f"#{span.seq:<7}  {span.ts:>10}  {span.stage:<16}"
                f"{span.event_type:<10}{span.detail}"
            )
        dropped = self._seq - len(self._spans)
        if dropped > 0:
            lines.append(
                f"... ring buffer kept the last {len(self._spans)} of "
                f"{self._seq} spans ({dropped} dropped)"
            )
        return "\n".join(lines)


class NullTraceRecorder(TraceRecorder):
    """Shared no-op recorder; ``enabled`` is False."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def record(
        self,
        stage: str,
        ts: int = 0,
        event_type: str = "",
        detail: str = "",
    ) -> None:
        pass


NULL_TRACER = NullTraceRecorder()


def resolve_tracer(trace: TraceRecorder | None) -> TraceRecorder:
    """What an engine constructor does with its ``trace=`` argument."""
    return trace if trace is not None else NULL_TRACER
