"""Opt-in sampling profiler emitting collapsed (flamegraph-ready) stacks.

A :class:`SamplingProfiler` is a daemon thread that wakes every
``interval_s``, walks every *other* thread's current stack via
``sys._current_frames()``, and counts collapsed ``a;b;c`` stack
strings. Output is the standard collapsed-stack format — one
``frames... count`` line each — which ``flamegraph.pl`` / speedscope /
inferno consume directly.

Scoping: by default only stacks that pass through this package's code
(``scope="repro"``, matched against frame filenames) are kept, trimmed
to start at the outermost matching frame, so an idle admin thread
parked in ``select`` does not drown the engine stages the profile is
for. Pass ``scope=None`` to keep everything (tests do).

Cost: zero on the hot path — the engine is never instrumented; the
sampler reads frames from the outside. The sampled process pays one
stack walk per thread per tick (default 100 Hz), which is why the CLI
gates it behind ``--profile``.

In the sharded engine every worker process runs its own profiler and
ships cumulative counts with its observability snapshots; the router
concatenates per-process sections under ``router;...`` / ``shard-N;...``
roots for ``/profile``.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Any


class SamplingProfiler:
    """Thread-sampling profiler with collapsed-stack output."""

    def __init__(
        self,
        interval_s: float = 0.01,
        scope: str | None = "repro",
        max_depth: int = 64,
    ):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self.interval_s = interval_s
        self._scope = scope
        self._max_depth = max_depth
        self._counts: dict[str, int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.samples_taken = 0

    # ----- lifecycle --------------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._thread is None:
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="obs-profiler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=self.interval_s * 10 + 1.0)
            self._thread = None

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.sample_once()
            except Exception:  # defensive: sampling never kills the thread
                pass

    # ----- sampling ---------------------------------------------------------

    def sample_once(self) -> None:
        """Walk every other thread's stack once and count the stacks."""
        me = threading.get_ident()
        skip = {me}
        thread = self._thread
        if thread is not None and thread.ident is not None:
            skip.add(thread.ident)
        for ident, frame in sys._current_frames().items():
            if ident in skip:
                continue
            stack = self._collapse(frame)
            if stack is None:
                continue
            with self._lock:
                self._counts[stack] = self._counts.get(stack, 0) + 1
        self.samples_taken += 1

    def _collapse(self, frame: Any) -> str | None:
        """One frame chain as ``root;...;leaf``, scoped and trimmed."""
        frames: list[tuple[str, bool]] = []
        depth = 0
        while frame is not None and depth < self._max_depth:
            code = frame.f_code
            filename = code.co_filename
            stem = filename.rsplit("/", 1)[-1]
            if stem.endswith(".py"):
                stem = stem[:-3]
            in_scope = self._scope is not None and self._scope in filename
            frames.append((f"{stem}.{code.co_name}", in_scope))
            frame = frame.f_back
            depth += 1
        frames.reverse()  # root first, collapsed-stack order
        if self._scope is None:
            return ";".join(label for label, _ in frames)
        first = next(
            (index for index, (_, hit) in enumerate(frames) if hit), None
        )
        if first is None:
            return None
        return ";".join(label for label, _ in frames[first:])

    # ----- reads ------------------------------------------------------------

    def counts(self) -> dict[str, int]:
        """Cumulative ``{collapsed_stack: samples}`` (picklable)."""
        with self._lock:
            return dict(self._counts)

    def clear(self) -> None:
        with self._lock:
            self._counts.clear()

    def collapsed(self, root: str = "") -> str:
        """The collapsed-stack text of this profiler's counts."""
        return collapsed_text(self.counts(), root=root)


def collapsed_text(counts: dict[str, int], root: str = "") -> str:
    """Render ``{stack: count}`` as collapsed-stack lines.

    ``root`` prefixes every stack with a process identity frame
    (``router;...``, ``shard-0;...``) so one file can hold a whole
    fleet's profile and the flamegraph groups by process.
    """
    prefix = f"{root};" if root else ""
    return "".join(
        f"{prefix}{stack} {count}\n"
        for stack, count in sorted(counts.items())
    )
