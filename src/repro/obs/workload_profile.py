"""Workload profile export: one JSON document describing a run.

A workload profile folds the EXPLAIN plan, the match funnel, the
state-growth watermarks and the cost-model drift into a single
versioned artifact (``workload_profile.json``) an operator can archive
per deployment, diff across releases, or feed back into capacity
planning. Producers: ``repro ... --workload-profile PATH`` and the
admin server's ``/workload_profile`` endpoint.

The schema is intentionally flat and explicit:

* ``workload_profile_version`` — bumped on incompatible change;
* ``engine_kind`` / ``explain`` — the full structured plan;
* ``queries`` — per real query: funnel stage counts, observed event-time
  span, sampled stage latencies, live-state snapshot, and
  estimated-vs-observed drift;
* ``shared_series`` — funnel rows of the sharing engines' pseudo-queries
  (``segment:...``, ``pretree:...``) whose work is unattributable;
* ``overlap`` — pairwise prefix/type overlap between queries (the raw
  material of sharing decisions);
* ``totals`` — whole-engine funnel totals.

:func:`load_workload_profile` is the schema-checked loader the tests
round-trip through; it raises ``ValueError`` on malformed documents.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any

from repro.obs.explain import (
    EXPLAIN_VERSION,
    drift_from_counts,
    explain_engine,
)
from repro.obs.funnel import STAGES, funnel_rows, funnel_totals
from repro.obs.registry import MetricsRegistry

PROFILE_VERSION = 1

_REQUIRED_TOP = (
    "workload_profile_version",
    "explain_version",
    "engine_kind",
    "generated_at_unix",
    "explain",
    "queries",
    "shared_series",
    "overlap",
    "totals",
)


def _n_types(plan: dict[str, Any]) -> int:
    labels = plan.get("pattern", {}).get("positive_types", [])
    return len({t for label in labels for t in label.split("|")})


def _overlap(plans: dict[str, Any]) -> list[dict[str, Any]]:
    """Pairwise prefix/type overlap, from the explain plans alone (so
    it works for every engine family, including sharded)."""
    names = sorted(
        name
        for name, plan in plans.items()
        if plan.get("pattern") is not None
    )
    pairs = []
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            left = plans[a]["pattern"]["positive_types"]
            right = plans[b]["pattern"]["positive_types"]
            prefix = 0
            for x, y in zip(left, right):
                if x != y:
                    break
                prefix += 1
            left_set = {t for label in left for t in label.split("|")}
            right_set = {t for label in right for t in label.split("|")}
            union = left_set | right_set
            shared = left_set & right_set
            pairs.append(
                {
                    "a": a,
                    "b": b,
                    "common_prefix": prefix,
                    "shared_types": sorted(shared),
                    "jaccard": (len(shared) / len(union)) if union else 0.0,
                }
            )
    return pairs


def build_workload_profile(
    engine: Any, registry: MetricsRegistry | None = None
) -> dict[str, Any]:
    """Fold one engine's plan + funnel + state into a profile dict.

    ``registry`` is where the funnel series live; defaults to the
    engine's funnel registry (which is the shared obs registry when
    instrumentation is on). Works degraded — with the funnel off the
    per-query rows simply carry zero counts and no drift.
    """
    hook = getattr(engine, "explain", None)
    explain = hook() if callable(hook) else explain_engine(engine)
    if registry is None:
        funnel = getattr(engine, "funnel", None)
        if funnel is not None and funnel.enabled:
            registry = funnel.registry
        else:
            registry = getattr(engine, "obs_registry", None)
    rows = (
        {row["query"]: row for row in funnel_rows(registry)}
        if registry is not None
        else {}
    )
    try:
        state_rows = {
            row["query"]: row for row in engine.query_rows()
        }
    except Exception:
        state_rows = {}

    plan_queries = explain["queries"]
    queries: dict[str, Any] = {}
    for name, plan in plan_queries.items():
        row = rows.pop(name, None)
        entry: dict[str, Any] = {
            "funnel": (
                {stage: row[stage] for stage in STAGES}
                if row is not None
                else {stage: 0 for stage in STAGES}
            ),
        }
        if row is not None:
            entry["first_event_ms"] = row.get("first_event_ms")
            entry["last_event_ms"] = row.get("last_event_ms")
            entry["stage_latency_us"] = row.get("stage_latency_us") or {}
            window_ms = (plan.get("features") or {}).get("window_ms")
            entry["drift"] = drift_from_counts(window_ms, _n_types(plan), row)
        else:
            entry["first_event_ms"] = None
            entry["last_event_ms"] = None
            entry["stage_latency_us"] = {}
            entry["drift"] = None
        state = state_rows.get(name)
        if state is not None:
            entry["state"] = {
                key: state.get(key)
                for key in (
                    "live_objects",
                    "peak_objects",
                    "counter_updates",
                    "hpc_partitions",
                    "cc_snapshot_rows",
                    "latency_us_p50",
                    "latency_us_p99",
                )
                if state.get(key) is not None
            }
        else:
            entry["state"] = {}
        estimated = plan.get("estimated")
        if estimated is not None:
            entry["estimated_updates_per_event"] = estimated[
                "updates_per_event"
            ]
        queries[name] = entry

    # Whatever is left is a sharing engine's pseudo-series
    # (segment:..., pretree:...) or a registration unknown to the plan.
    shared_series = {
        name: {stage: row[stage] for stage in STAGES}
        for name, row in sorted(rows.items())
    }
    return {
        "workload_profile_version": PROFILE_VERSION,
        "explain_version": EXPLAIN_VERSION,
        "engine_kind": explain["kind"],
        "generated_at_unix": time.time(),
        "explain": explain,
        "queries": queries,
        "shared_series": shared_series,
        "overlap": _overlap(plan_queries),
        "totals": funnel_totals(
            list(queries[name]["funnel"] for name in queries)
        ),
    }


def write_workload_profile(
    engine: Any,
    path: str | Path,
    registry: MetricsRegistry | None = None,
) -> dict[str, Any]:
    """Build and write ``workload_profile.json``; returns the profile."""
    profile = build_workload_profile(engine, registry=registry)
    Path(path).write_text(json.dumps(profile, indent=2, sort_keys=True))
    return profile


def load_workload_profile(path: str | Path) -> dict[str, Any]:
    """Schema-checked loader; raises ``ValueError`` on bad documents."""
    try:
        document = json.loads(Path(path).read_text())
    except json.JSONDecodeError as error:
        raise ValueError(f"not a JSON document: {error}") from error
    if not isinstance(document, dict):
        raise ValueError("workload profile must be a JSON object")
    missing = [key for key in _REQUIRED_TOP if key not in document]
    if missing:
        raise ValueError(f"workload profile missing keys: {missing}")
    version = document["workload_profile_version"]
    if version != PROFILE_VERSION:
        raise ValueError(
            f"unsupported workload profile version {version!r} "
            f"(this build reads {PROFILE_VERSION})"
        )
    if not isinstance(document["queries"], dict):
        raise ValueError("'queries' must be an object")
    for name, entry in document["queries"].items():
        funnel = entry.get("funnel")
        if not isinstance(funnel, dict) or any(
            stage not in funnel for stage in STAGES
        ):
            raise ValueError(
                f"query {name!r} is missing funnel stage counts"
            )
    return document


__all__ = [
    "PROFILE_VERSION",
    "build_workload_profile",
    "write_workload_profile",
    "load_workload_profile",
]
