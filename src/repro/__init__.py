"""A-Seq — online aggregation of stream sequence patterns.

A faithful, self-contained reproduction of *"Complex Event Analytics:
Online Aggregation of Stream Sequence Patterns"* (SIGMOD 2014):
match-free CEP aggregation (A-Seq), the stack-based two-step baseline
it is measured against, multi-query sharing (prefix trees and
Chop-Connect), workload generators and the full benchmark harness.

Quickstart::

    from repro import ASeqEngine, Event, parse_query

    query = parse_query(
        "PATTERN SEQ(Kindle, KindleCase, Stylus) "
        "WHERE Kindle.userId = KindleCase.userId = Stylus.userId "
        "AGG COUNT WITHIN 1 hour"
    )
    engine = ASeqEngine(query)
    for event in stream:
        fresh = engine.process(event)
        if fresh is not None:
            print(fresh)
"""

from repro.baseline import BruteForceOracle, TwoStepEngine
from repro.core import ASeqEngine
from repro.events import Event, EventStream
from repro.query import QueryBuilder, parse_query, seq

__version__ = "1.0.0"

__all__ = [
    "ASeqEngine",
    "BruteForceOracle",
    "Event",
    "EventStream",
    "QueryBuilder",
    "TwoStepEngine",
    "parse_query",
    "seq",
    "__version__",
]
