"""Command-line interface: run a CEP aggregation query over a stream.

Examples::

    # a query over a trace file (the paper's dataset format)
    python -m repro --query "PATTERN SEQ(DELL, IPIX, AMAT) AGG COUNT \\
        WITHIN 1 s" --trace trades.txt

    # the same over a generated stream, comparing engines
    python -m repro --query-file q.cep --generate stock --events 50000 \\
        --engine both

    # a multi-query workload file, shared execution
    python -m repro --workload-file funnels.cep --generate clicks \\
        --events 20000 --shared
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Any, Iterable

from repro.baseline.twostep import TwoStepEngine
from repro.core.executor import ASeqEngine
from repro.datagen.clicks import ClickStreamGenerator
from repro.datagen.security import LoginStreamGenerator
from repro.datagen.stock import StockTradeGenerator
from repro.datagen.tracefile import read_trace
from repro.errors import ReproError
from repro.events.event import Event
from repro.events.reorder import reordered
from repro.multi.unshared import UnsharedEngine
from repro.multi.workload import WorkloadEngine
from repro.query.parser import parse_query, parse_workload

_GENERATORS = {
    "stock": lambda seed: StockTradeGenerator(mean_gap_ms=1, seed=seed),
    "clicks": lambda seed: ClickStreamGenerator(seed=seed),
    "logins": lambda seed: LoginStreamGenerator(seed=seed),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Online aggregation of stream sequence patterns (A-Seq).",
    )
    source = parser.add_argument_group("query source (exactly one)")
    source.add_argument("--query", help="query text")
    source.add_argument("--query-file", help="file containing one query")
    source.add_argument(
        "--workload-file",
        help="file of named queries ('name: PATTERN ...;')",
    )
    stream = parser.add_argument_group("event source (exactly one)")
    stream.add_argument("--trace", help="trace file to replay")
    stream.add_argument(
        "--generate",
        choices=sorted(_GENERATORS),
        help="generate a synthetic stream instead of reading a trace",
    )
    parser.add_argument(
        "--events", type=int, default=20_000,
        help="events to generate (with --generate; default 20000)",
    )
    parser.add_argument(
        "--seed", type=int, default=17, help="generator seed (default 17)"
    )
    parser.add_argument(
        "--engine",
        choices=("aseq", "vectorized", "twostep", "both"),
        default="aseq",
        help="single-query engine (default aseq); 'both' cross-checks "
        "A-Seq against the stack-based baseline",
    )
    parser.add_argument(
        "--shared",
        action="store_true",
        help="run a workload with Chop-Connect sharing (default: unshared)",
    )
    parser.add_argument(
        "--reorder-slack-ms",
        type=int,
        default=0,
        help="tolerate out-of-order input up to this slack",
    )
    parser.add_argument(
        "--emit",
        choices=("final", "every", "none"),
        default="final",
        help="print every fresh aggregate, only the final one, or none",
    )
    return parser


def _load_queries(args: argparse.Namespace) -> list:
    sources = [args.query, args.query_file, args.workload_file]
    if sum(s is not None for s in sources) != 1:
        raise SystemExit(
            "exactly one of --query / --query-file / --workload-file "
            "is required"
        )
    if args.query is not None:
        return [parse_query(args.query, name="q")]
    if args.query_file is not None:
        with open(args.query_file, "r", encoding="utf-8") as handle:
            return [parse_query(handle.read(), name="q")]
    with open(args.workload_file, "r", encoding="utf-8") as handle:
        return parse_workload(handle.read())


def _load_events(args: argparse.Namespace) -> Iterable[Event]:
    if (args.trace is None) == (args.generate is None):
        raise SystemExit("exactly one of --trace / --generate is required")
    if args.trace is not None:
        events: Iterable[Event] = read_trace(
            args.trace, enforce_order=args.reorder_slack_ms == 0
        )
    else:
        generator = _GENERATORS[args.generate](args.seed)
        events = generator.events(args.events)
    if args.reorder_slack_ms:
        events = reordered(events, slack_ms=args.reorder_slack_ms)
    return events


def _build_engine(args: argparse.Namespace, queries: list) -> Any:
    if len(queries) > 1 or args.workload_file is not None:
        if args.shared:
            engine = WorkloadEngine(queries)
            print(f"# {engine.describe()}".replace("\n", "\n# "),
                  file=sys.stderr)
            return engine
        return UnsharedEngine(queries)
    (query,) = queries
    if args.engine == "twostep":
        return TwoStepEngine(query)
    if args.engine == "vectorized":
        return ASeqEngine(query, vectorized=True)
    return ASeqEngine(query)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        queries = _load_queries(args)
        events = _load_events(args)
        engine = _build_engine(args, queries)

        cross_check = None
        if args.engine == "both" and len(queries) == 1:
            cross_check = TwoStepEngine(queries[0])

        processed = 0
        outputs = 0
        started = time.perf_counter()
        for event in events:
            fresh = engine.process(event)
            if cross_check is not None:
                cross_check.process(event)
            processed += 1
            if fresh is not None:
                outputs += 1
                if args.emit == "every":
                    print(f"{event.ts}\t{fresh}")
        elapsed = time.perf_counter() - started

        final = engine.result()
        if args.emit != "none":
            print(f"result\t{final}")
        if cross_check is not None:
            baseline = cross_check.result()
            status = "AGREE" if baseline == final else "DISAGREE"
            print(f"cross-check (two-step)\t{baseline}\t{status}",
                  file=sys.stderr)
            if baseline != final:
                return 2
        rate = processed / elapsed if elapsed else 0.0
        print(
            f"# {processed:,} events in {elapsed:.2f}s "
            f"({rate:,.0f} ev/s), {outputs:,} outputs",
            file=sys.stderr,
        )
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
