"""Command-line interface: run a CEP aggregation query over a stream.

Examples::

    # a query over a trace file (the paper's dataset format)
    python -m repro --query "PATTERN SEQ(DELL, IPIX, AMAT) AGG COUNT \\
        WITHIN 1 s" --trace trades.txt

    # the same over a generated stream, comparing engines
    python -m repro --query-file q.cep --generate stock --events 50000 \\
        --engine both

    # a multi-query workload file, shared execution
    python -m repro --workload-file funnels.cep --generate clicks \\
        --events 20000 --shared
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Iterable

from repro.baseline.twostep import TwoStepEngine
from repro.core.executor import ASeqEngine
from repro.datagen.clicks import ClickStreamGenerator
from repro.datagen.security import LoginStreamGenerator
from repro.datagen.stock import StockTradeGenerator
from repro.datagen.tracefile import read_trace
from repro.errors import ReproError
from repro.events.event import Event
from repro.events.reorder import reordered
from repro.multi.unshared import UnsharedEngine
from repro.multi.workload import WorkloadEngine
from repro.obs.explain import explain_engine, render_explain
from repro.obs.export import write_json_snapshot, write_prometheus
from repro.obs.funnel import FunnelRecorder, set_default_funnel
from repro.obs.history import HistoryRecorder, default_history
from repro.obs.logging import LogConfig, get_logger, install_config
from repro.obs.profile import SamplingProfiler, collapsed_text
from repro.obs.registry import (
    NULL_REGISTRY,
    MetricsRegistry,
    set_default_registry,
)
from repro.obs.server import AdminServer
from repro.obs.tracing import NULL_TRACER, TraceRecorder
from repro.obs.workload_profile import write_workload_profile
from repro.query.parser import parse_query, parse_workload

_log = get_logger("cli")

_GENERATORS = {
    "stock": lambda seed: StockTradeGenerator(mean_gap_ms=1, seed=seed),
    "clicks": lambda seed: ClickStreamGenerator(seed=seed),
    "logins": lambda seed: LoginStreamGenerator(seed=seed),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Online aggregation of stream sequence patterns (A-Seq).",
    )
    source = parser.add_argument_group("query source (exactly one)")
    source.add_argument("--query", help="query text")
    source.add_argument("--query-file", help="file containing one query")
    source.add_argument(
        "--workload-file",
        help="file of named queries ('name: PATTERN ...;')",
    )
    stream = parser.add_argument_group("event source (exactly one)")
    stream.add_argument("--trace", help="trace file to replay")
    stream.add_argument(
        "--generate",
        choices=sorted(_GENERATORS),
        help="generate a synthetic stream instead of reading a trace",
    )
    parser.add_argument(
        "--events", type=int, default=20_000,
        help="events to generate (with --generate; default 20000)",
    )
    parser.add_argument(
        "--seed", type=int, default=17, help="generator seed (default 17)"
    )
    parser.add_argument(
        "--engine",
        choices=("aseq", "vectorized", "twostep", "both"),
        default="aseq",
        help="single-query engine (default aseq); 'both' cross-checks "
        "A-Seq against the stack-based baseline",
    )
    parser.add_argument(
        "--shared",
        action="store_true",
        help="run a workload with Chop-Connect sharing (default: unshared)",
    )
    parser.add_argument(
        "--reorder-slack-ms",
        type=int,
        default=0,
        help="tolerate out-of-order input up to this slack",
    )
    parser.add_argument(
        "--emit",
        choices=("final", "every", "none"),
        default="final",
        help="print every fresh aggregate, only the final one, or none",
    )
    obs = parser.add_argument_group("observability")
    obs.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="enable instrumentation and write a Prometheus text "
        "exposition to FILE plus a JSON snapshot to FILE.json",
    )
    obs.add_argument(
        "--stats-every",
        type=int,
        metavar="N",
        default=0,
        help="print a one-line stats report to stderr every N events "
        "(enables instrumentation; 0 disables)",
    )
    obs.add_argument(
        "--dump-trace",
        action="store_true",
        help="record event-lifecycle spans and dump the trace ring "
        "buffer to stderr at the end of the run",
    )
    obs.add_argument(
        "--trace-capacity",
        type=int,
        metavar="N",
        default=256,
        help="trace ring buffer capacity (default 256)",
    )
    obs.add_argument(
        "--trace-sample",
        type=int,
        metavar="N",
        default=64,
        help="with --shards and --dump-trace, stamp a cross-process "
        "trace id on every Nth routed event (default 64)",
    )
    obs.add_argument(
        "--history-every",
        type=float,
        metavar="SECONDS",
        default=0.0,
        help="sample a time-series history of key metrics every this "
        "many seconds, served at /dashboard.json and /dashboard "
        "(enables instrumentation; 0 disables)",
    )
    obs.add_argument(
        "--profile",
        action="store_true",
        help="run a sampling profiler over the engine stages and serve "
        "the collapsed-stack profile at /profile (per process under "
        "--shards)",
    )
    obs.add_argument(
        "--profile-out",
        metavar="FILE",
        help="write the collapsed-stack profile to FILE at the end of "
        "the run (implies --profile)",
    )
    obs.add_argument(
        "--admin-port",
        type=int,
        metavar="PORT",
        help="serve a live admin endpoint (/metrics, /healthz, "
        "/queries, ...) on 127.0.0.1:PORT while the run is in flight "
        "(enables instrumentation; 0 picks a free port)",
    )
    obs.add_argument(
        "--admin-linger",
        type=float,
        metavar="SECONDS",
        default=0.0,
        help="keep the admin endpoint up this long after the run "
        "finishes, so scrapers can collect the final state "
        "(requires --admin-port; default 0)",
    )
    obs.add_argument(
        "--explain",
        action="store_true",
        help="print the EXPLAIN plan (execution path, sharing "
        "strategy, cost estimate) to stderr before ingest starts; "
        "see also the offline 'python -m repro explain' subcommand",
    )
    obs.add_argument(
        "--funnel",
        action="store_true",
        help="record the per-query match funnel (events routed -> "
        "predicate pass -> runs extended/expired/blocked -> matches "
        "emitted) plus sampled per-stage latency",
    )
    obs.add_argument(
        "--workload-profile",
        metavar="FILE",
        help="write a versioned workload profile (EXPLAIN plan + "
        "funnel + state watermarks + cost drift) to FILE at the end "
        "of the run (implies --funnel)",
    )
    obs.add_argument(
        "--log-json",
        action="store_true",
        help="emit runtime diagnostics as JSON log lines instead of "
        "'# '-prefixed text",
    )
    perf = parser.add_argument_group("performance")
    perf.add_argument(
        "--batch-size",
        type=int,
        metavar="N",
        default=0,
        help="ingest in micro-batches of N events through the routed "
        "fast path (0 = reference per-event path; results are "
        "identical, see docs/PERFORMANCE.md)",
    )
    perf.add_argument(
        "--columnar",
        action="store_true",
        help="ingest as struct-of-arrays event batches through the "
        "zero-object columnar lane (implies the routed vectorized "
        "engine; non-vectorizable queries fall back per batch with "
        "identical results; composes with --shards via the "
        "flat-buffer shard wire)",
    )
    perf.add_argument(
        "--shards",
        type=int,
        metavar="N",
        default=0,
        help="run N worker processes, hash-partitioned on the GROUP "
        "BY / equivalence attribute; non-partitionable queries run "
        "in-process (0 = single process)",
    )
    perf.add_argument(
        "--transport",
        choices=("pipe", "tcp"),
        default="pipe",
        help="shard transport: forked processes over pipes (default) "
        "or framed TCP workers spawned locally / connected via "
        "--shard-worker",
    )
    perf.add_argument(
        "--shard-worker",
        action="append",
        metavar="HOST:PORT",
        help="connect to a pre-started networked worker "
        "(python -m repro.shard_worker --listen HOST:PORT) instead of "
        "spawning one; repeat once per shard (implies --transport tcp)",
    )
    perf.add_argument(
        "--workers-file",
        metavar="FILE",
        help="elastic worker membership: one HOST:PORT (or bare local "
        "member name) per line, hot-reloaded on change — added lines "
        "join the fleet, removed lines leave gracefully; partitions "
        "migrate live with exact state handoff (--shards only; "
        "HOST:PORT entries imply --transport tcp)",
    )
    perf.add_argument(
        "--membership-listen",
        metavar="HOST:PORT",
        help="open a worker self-registration listener so "
        "'python -m repro.shard_worker --listen ... --advertise "
        "HOST:PORT' can join the fleet without editing the workers "
        "file (--shards only; port 0 picks a free port)",
    )
    resilience = parser.add_argument_group("resilience")
    resilience.add_argument(
        "--journal",
        metavar="DIR",
        help="run under the supervised fault-tolerant engine, "
        "journaling every event to DIR before dispatch",
    )
    resilience.add_argument(
        "--checkpoint-every",
        type=int,
        metavar="N",
        default=0,
        help="write an engine-wide checkpoint to the journal directory "
        "every N events (0 disables; requires --journal)",
    )
    resilience.add_argument(
        "--recover",
        action="store_true",
        help="recover engine state from the latest checkpoint in the "
        "--journal directory and replay the journal suffix before "
        "processing the stream",
    )
    resilience.add_argument(
        "--fsync",
        choices=("never", "interval", "always"),
        default="never",
        help="journal fsync policy (default never; all policies "
        "survive process crashes, stricter ones survive power loss)",
    )
    resilience.add_argument(
        "--quarantine-after",
        type=int,
        metavar="K",
        default=5,
        help="quarantine a query after K consecutive executor "
        "failures (supervised engine only; default 5)",
    )
    resilience.add_argument(
        "--sink-retries",
        type=int,
        metavar="N",
        default=0,
        help="retry a failing sink delivery up to N times with "
        "exponential backoff before dead-lettering it (supervised "
        "engine only; default 0 = fail once, count, move on)",
    )
    resilience.add_argument(
        "--heartbeat-interval",
        type=float,
        metavar="S",
        default=0.5,
        help="shard heartbeat ping interval in seconds; 0 disables "
        "shard supervision entirely (--shards only; default 0.5)",
    )
    resilience.add_argument(
        "--shard-restart-limit",
        type=int,
        metavar="N",
        default=3,
        help="restarts granted to a failing shard before its "
        "key-range degrades into the local process (--shards only; "
        "default 3)",
    )
    resilience.add_argument(
        "--shard-journal",
        metavar="DIR",
        help="keep each shard's delivery journal and checkpoints on "
        "disk under DIR/shard-NN instead of in memory (--shards only)",
    )
    resilience.add_argument(
        "--router-journal",
        metavar="DIR",
        help="write-ahead journal every ingested event to DIR/lane-NN "
        "before routing, so the router itself survives a crash "
        "(--shards only; with --recover, resume from DIR); shard "
        "journals default to DIR/shards",
    )
    resilience.add_argument(
        "--router-checkpoint-every",
        type=int,
        metavar="N",
        default=0,
        help="persist the router's progress document every N ingested "
        "events, bounding recovery replay (0 disables; requires "
        "--router-journal)",
    )
    resilience.add_argument(
        "--ingest-lanes",
        type=int,
        metavar="N",
        default=1,
        help="partition the router WAL into N independent ingest "
        "lanes, each owning a key range with its own journal "
        "position (requires --router-journal; default 1)",
    )
    return parser


def _load_queries(args: argparse.Namespace) -> list:
    sources = [args.query, args.query_file, args.workload_file]
    if sum(s is not None for s in sources) != 1:
        raise SystemExit(
            "exactly one of --query / --query-file / --workload-file "
            "is required"
        )
    if args.query is not None:
        return [parse_query(args.query, name="q")]
    if args.query_file is not None:
        with open(args.query_file, "r", encoding="utf-8") as handle:
            return [parse_query(handle.read(), name="q")]
    with open(args.workload_file, "r", encoding="utf-8") as handle:
        return parse_workload(handle.read())


def _load_events(args: argparse.Namespace) -> Iterable[Event]:
    if (args.trace is None) == (args.generate is None):
        raise SystemExit("exactly one of --trace / --generate is required")
    if args.trace is not None:
        events: Iterable[Event] = read_trace(
            args.trace, enforce_order=args.reorder_slack_ms == 0
        )
    else:
        generator = _GENERATORS[args.generate](args.seed)
        events = generator.events(args.events)
    if args.reorder_slack_ms:
        events = reordered(events, slack_ms=args.reorder_slack_ms)
    return events


def _build_engine(
    args: argparse.Namespace,
    queries: list,
    registry: MetricsRegistry,
    trace: TraceRecorder,
) -> Any:
    if len(queries) > 1 or args.workload_file is not None:
        if args.shared:
            engine = WorkloadEngine(queries, registry=registry)
            _log.info(
                "workload_plan",
                message=engine.describe().replace("\n", "\n# "),
                queries=len(queries),
            )
            return engine
        return UnsharedEngine(queries, registry=registry)
    (query,) = queries
    if args.engine == "twostep":
        return TwoStepEngine(query, registry=registry)
    if args.engine == "vectorized":
        return ASeqEngine(query, vectorized=True, registry=registry)
    return ASeqEngine(query, registry=registry, trace=trace)


def _explain_plan(engine: Any) -> dict[str, Any]:
    hook = getattr(engine, "explain", None)
    return hook() if callable(hook) else explain_engine(engine)


def _print_explain(engine: Any) -> None:
    """``--explain`` in run mode: plan to stderr, results stay clean."""
    print(render_explain(_explain_plan(engine)), file=sys.stderr, end="")


def _write_profile(args: argparse.Namespace, engine: Any) -> None:
    if not args.workload_profile:
        return
    refresh = getattr(engine, "refresh_cost_metrics", None)
    if callable(refresh):
        try:
            refresh()  # pull-based gauges (drift, watermarks) go stale
        except Exception:
            pass
    write_workload_profile(engine, args.workload_profile)
    _log.info(
        "workload_profile_written",
        message=f"wrote workload profile to {args.workload_profile}",
        path=args.workload_profile,
    )


def _start_admin(
    args: argparse.Namespace,
    engine: Any,
    registry: MetricsRegistry,
    trace: TraceRecorder,
    history: HistoryRecorder | None = None,
    profiler: SamplingProfiler | None = None,
) -> AdminServer | None:
    if args.admin_port is None:
        return None
    admin = AdminServer(
        engine,
        registry=registry,
        trace=trace,
        history=history,
        profiler=profiler,
        port=args.admin_port,
    )
    admin.start()
    return admin


def _stop_admin(admin: AdminServer | None, linger: float) -> None:
    if admin is None:
        return
    if linger > 0:
        _log.info(
            "admin_linger",
            message=f"admin endpoint lingering {linger:g}s at "
            f"{admin.url()}",
            seconds=linger,
        )
        time.sleep(linger)
    admin.stop()


def _run_resilient(
    args: argparse.Namespace,
    queries: list,
    events: Iterable[Event],
    registry: MetricsRegistry,
    trace: TraceRecorder,
    history: HistoryRecorder | None = None,
    profiler: SamplingProfiler | None = None,
) -> int:
    """The ``--journal``/``--recover`` path: supervised engine run."""
    from repro.engine.sinks import CallbackSink
    from repro.resilience import (
        Checkpointer,
        EventJournal,
        SupervisedStreamEngine,
        recover,
    )

    if args.journal is None:
        raise SystemExit("--recover requires --journal DIR")
    if args.engine in ("twostep", "both"):
        raise SystemExit(
            "--journal needs checkpointable executors; "
            "--engine twostep/both is not supported here"
        )
    sinks: dict[str, list] = {}
    if args.emit == "every":
        printer = CallbackSink(
            lambda output: print(
                f"{output.ts}\t{output.query_name}\t{output.value}"
            )
        )
        sinks = {
            (query.name or f"q{index}"): [printer]
            for index, query in enumerate(queries)
        }
    checkpoint_every = args.checkpoint_every or None
    if args.recover:
        engine = recover(
            args.journal,
            sinks=sinks,
            queries=queries,
            registry=registry,
            trace=trace,
            checkpoint_every_events=checkpoint_every,
            fsync=args.fsync,
            quarantine_after=args.quarantine_after,
        )
        _log.info(
            "recovered",
            message=f"recovered: {len(engine.query_names)} queries, "
            f"{engine.events_replayed} journal events replayed",
            queries=len(engine.query_names),
            events_replayed=engine.events_replayed,
        )
    else:
        engine = SupervisedStreamEngine(
            vectorized=args.engine == "vectorized",
            registry=registry,
            trace=trace,
            quarantine_after=args.quarantine_after,
            routed=args.batch_size > 1,
            batch_size=max(0, args.batch_size),
            sink_retries=max(0, args.sink_retries),
        )
        journal = EventJournal(
            args.journal, fsync=args.fsync, registry=registry
        )
        engine.attach_journal(journal)
        if checkpoint_every:
            engine.attach_checkpointer(
                Checkpointer(
                    args.journal,
                    engine,
                    journal=journal,
                    every_events=checkpoint_every,
                    registry=registry,
                )
            )
        for index, query in enumerate(queries):
            name = query.name or f"q{index}"
            engine.register(query, *sinks.get(name, ()), name=name)

    if args.explain:
        _print_explain(engine)
    if history is not None:
        history.set_refresher(engine.refresh_cost_metrics)
    admin = _start_admin(args, engine, registry, trace, history, profiler)
    try:
        started = time.perf_counter()
        processed = engine.run(events, batch_size=args.batch_size or None)
        elapsed = time.perf_counter() - started

        if engine.checkpointer is not None:
            engine.checkpointer.checkpoint_now()
        if engine.journal is not None:
            engine.journal.close()

        if args.emit != "none":
            for name, value in engine.results().items():
                print(f"result\t{name}\t{value}")
        quarantined = engine.quarantined()
        if quarantined or len(engine.dlq):
            _log.warning(
                "quarantine_summary",
                message=f"quarantined={quarantined} "
                f"dead_letters={len(engine.dlq)}",
                quarantined=quarantined,
                dead_letters=len(engine.dlq),
            )
        rate = processed / elapsed if elapsed else 0.0
        _log.info(
            "run_complete",
            message=f"{processed:,} events in {elapsed:.2f}s "
            f"({rate:,.0f} ev/s), {engine.metrics.outputs:,} outputs "
            f"(lifetime {engine.metrics.events:,} events)",
            events=processed,
            outputs=engine.metrics.outputs,
            elapsed_s=round(elapsed, 3),
        )
        if args.metrics_out:
            write_prometheus(registry, args.metrics_out)
            write_json_snapshot(
                registry,
                args.metrics_out + ".json",
                run={
                    "events": processed,
                    "elapsed_s": elapsed,
                    "events_per_s": rate,
                },
            )
            _log.info(
                "metrics_written",
                message=f"wrote metrics to {args.metrics_out}",
                path=args.metrics_out,
            )
        if args.dump_trace:
            print(trace.format(), file=sys.stderr)
        _write_profile(args, engine)
        return 0
    finally:
        _stop_admin(admin, args.admin_linger)


def _run_sharded(
    args: argparse.Namespace,
    queries: list,
    events: Iterable[Event],
    registry: MetricsRegistry,
    trace: TraceRecorder,
    history: HistoryRecorder | None = None,
) -> int:
    """The ``--shards N`` path: hash-partitioned worker processes."""
    from repro.engine.sharded import ShardedStreamEngine
    from repro.engine.sinks import CallbackSink

    if args.journal:
        raise SystemExit(
            "--shards cannot be combined with --journal; the supervised "
            "engine is single-process (use --router-journal for a "
            "crash-safe router)"
        )
    if args.recover and not args.router_journal:
        raise SystemExit(
            "--shards --recover needs --router-journal DIR (the router "
            "WAL to resume from)"
        )
    if args.engine in ("twostep", "both"):
        raise SystemExit(
            "--shards runs A-Seq executors; --engine twostep/both is "
            "not supported here"
        )
    if args.shared:
        raise SystemExit("--shards and --shared are mutually exclusive")
    if args.ingest_lanes < 1:
        raise SystemExit("--ingest-lanes must be >= 1")
    if args.columnar:
        from repro.events.batch import batches_from_events

        # The sharded run loop accepts EventBatch items natively and
        # ships each worker its partition as a flat buffer.
        events = batches_from_events(
            events,
            batch_size=args.batch_size if args.batch_size > 1 else 4096,
        )
    supervise = args.heartbeat_interval > 0
    transport = args.transport
    if args.shard_worker:
        transport = "tcp"
    membership = None
    if args.workers_file or args.membership_listen:
        from repro.resilience.membership import (
            WorkerRegistry,
            registry_from_cli,
        )

        if not supervise:
            raise SystemExit(
                "--workers-file/--membership-listen need shard "
                "supervision (--heartbeat-interval > 0)"
            )
        if args.workers_file:
            membership = registry_from_cli(
                args.workers_file, metrics=registry
            )
        else:
            membership = WorkerRegistry(registry=registry)
        if any(m.address for m in membership.live_members()):
            transport = "tcp"  # networked members need framed TCP
        if args.membership_listen:
            host, _, port = args.membership_listen.rpartition(":")
            bound = membership.listen(host or "127.0.0.1", int(port or 0))
            transport = "tcp"  # advertised members arrive as HOST:PORT
            _log.info(
                "membership_listening",
                message=(
                    f"worker self-registration listener on "
                    f"{bound[0]}:{bound[1]}"
                ),
                host=bound[0],
                port=bound[1],
            )
    shard_journal = args.shard_journal
    if args.router_journal and not shard_journal:
        # Router recovery reconciles against durable shard journals;
        # keep both under one directory when only the WAL is named.
        from pathlib import Path

        shard_journal = str(Path(args.router_journal) / "shards")
    sinks: tuple = ()
    if args.emit == "every":
        sinks = (
            CallbackSink(
                lambda output: print(
                    f"{output.ts}\t{output.query_name}\t{output.value}"
                )
            ),
        )
    engine_kwargs = dict(
        batch_size=args.batch_size if args.batch_size > 1 else 256,
        vectorized=args.engine == "vectorized",
        registry=registry,
        supervise=supervise,
        heartbeat_interval_s=args.heartbeat_interval if supervise else 0.5,
        restart_limit=max(0, args.shard_restart_limit),
        trace=trace if trace.enabled else None,
        trace_sample=max(1, args.trace_sample),
        profile=args.profile or bool(args.profile_out),
        transport=transport,
        worker_addresses=args.shard_worker,
        router_checkpoint_every=max(0, args.router_checkpoint_every),
        membership=membership,
    )
    if args.recover:
        from repro.resilience.router_recovery import recover_router

        named_sinks = {
            (query.name or f"q{index}"): list(sinks)
            for index, query in enumerate(queries)
        }
        engine = recover_router(
            args.router_journal,
            queries=queries,
            sinks=named_sinks,
            shards=args.shards,
            journal_dir=shard_journal,
            lanes=args.ingest_lanes if args.ingest_lanes > 1 else None,
            fsync=args.fsync,
            **engine_kwargs,
        )
        _log.info(
            "router_recovered",
            message=f"router recovered: {engine.events_replayed} lane "
            f"events replayed",
            events_replayed=engine.events_replayed,
        )
    else:
        engine = ShardedStreamEngine(
            shards=args.shards,
            journal_dir=shard_journal,
            **engine_kwargs,
        )
        for index, query in enumerate(queries):
            engine.register(query, *sinks, name=query.name or f"q{index}")
        if args.router_journal:
            from repro.resilience.router_recovery import RouterLog

            engine.attach_router_log(
                RouterLog(
                    args.router_journal,
                    lanes=args.ingest_lanes,
                    fsync=args.fsync,
                    registry=registry,
                )
            )
    if args.explain:
        _print_explain(engine)
    if history is not None:
        refresh = getattr(engine, "refresh_cost_metrics", None)
        if callable(refresh):
            history.set_refresher(refresh)
    admin = _start_admin(args, engine, registry, trace, history)
    try:
        started = time.perf_counter()
        processed = engine.run(events)
        elapsed = time.perf_counter() - started
        results = engine.results()
        state = engine.inspect()
        if args.emit != "none":
            for name, value in results.items():
                print(f"result\t{name}\t{value}")
        if engine.degraded_shards or engine.shed_events:
            _log.warning(
                "shard_summary",
                message=f"degraded_shards={sorted(engine.degraded_shards)} "
                f"shed_events={engine.shed_events}",
                degraded_shards=sorted(engine.degraded_shards),
                shed_events=engine.shed_events,
            )
        rate = processed / elapsed if elapsed else 0.0
        _log.info(
            "run_complete",
            message=f"{processed:,} events in {elapsed:.2f}s "
            f"({rate:,.0f} ev/s) across {args.shards} shards "
            f"(sharded={state['sharded_queries']} "
            f"local={state['local_queries']})",
            events=processed,
            elapsed_s=round(elapsed, 3),
            shards=args.shards,
        )
        if args.metrics_out:
            write_prometheus(registry, args.metrics_out)
            write_json_snapshot(
                registry,
                args.metrics_out + ".json",
                run={
                    "events": processed,
                    "elapsed_s": elapsed,
                    "events_per_s": rate,
                    "shards": args.shards,
                },
            )
        if args.profile_out:
            profile = engine.collapsed_profile() or ""
            with open(args.profile_out, "w", encoding="utf-8") as handle:
                handle.write(profile)
            _log.info(
                "profile_written",
                message=f"wrote fleet profile to {args.profile_out}",
                path=args.profile_out,
            )
        if args.dump_trace:
            print(trace.format(), file=sys.stderr)
        _write_profile(args, engine)
        return 0
    finally:
        # Workers stay up through the linger so /queries and
        # /queries/<id>/state can still reach them.
        _stop_admin(admin, args.admin_linger)
        engine.close()
        if membership is not None:
            membership.close()


def _run_columnar(
    args: argparse.Namespace,
    queries: list,
    events: Iterable[Event],
    registry: MetricsRegistry,
    trace: TraceRecorder,
    history: HistoryRecorder | None = None,
    profiler: SamplingProfiler | None = None,
) -> int:
    """The ``--columnar`` path: struct-of-arrays batches through the
    routed vectorized engine's zero-object lane."""
    from repro.engine.engine import StreamEngine
    from repro.engine.sinks import CallbackSink
    from repro.events.batch import batches_from_events

    if args.engine in ("twostep", "both"):
        raise SystemExit(
            "--columnar runs A-Seq executors; --engine twostep/both is "
            "not supported here"
        )
    if args.shared:
        raise SystemExit(
            "--columnar and --shared are mutually exclusive (shared "
            "plans consume events per-TRIG)"
        )
    engine = StreamEngine(
        routed=True,
        vectorized=True,
        registry=registry,
        trace=trace if trace.enabled else None,
        stream_name="columnar",
    )
    sinks: tuple = ()
    if args.emit == "every":
        sinks = (
            CallbackSink(
                lambda output: print(f"{output.ts}\t{output.value}")
            ),
        )
    for index, query in enumerate(queries):
        engine.register(query, *sinks, name=query.name or f"q{index}")
    if args.explain:
        _print_explain(engine)
    if history is not None:
        refresh = getattr(engine, "refresh_cost_metrics", None)
        if callable(refresh):
            history.set_refresher(refresh)
    admin = _start_admin(args, engine, registry, trace, history, profiler)
    try:
        batch_size = args.batch_size if args.batch_size > 1 else 4096
        started = time.perf_counter()
        processed = engine.run(
            batches_from_events(events, batch_size=batch_size)
        )
        elapsed = time.perf_counter() - started
        if args.emit != "none":
            for name, value in engine.results().items():
                print(f"result\t{name}\t{value}")
        rate = processed / elapsed if elapsed else 0.0
        _log.info(
            "run_complete",
            message=f"{processed:,} events in {elapsed:.2f}s "
            f"({rate:,.0f} ev/s) through the columnar lane "
            f"(batch size {batch_size})",
            events=processed,
            outputs=engine.metrics.outputs,
            elapsed_s=round(elapsed, 3),
        )
        if args.metrics_out:
            write_prometheus(registry, args.metrics_out)
            write_json_snapshot(
                registry,
                args.metrics_out + ".json",
                run={
                    "events": processed,
                    "elapsed_s": elapsed,
                    "events_per_s": rate,
                },
            )
        if args.dump_trace:
            print(trace.format(), file=sys.stderr)
        _write_profile(args, engine)
        return 0
    finally:
        _stop_admin(admin, args.admin_linger)


def _stats_line(
    processed: int,
    outputs: int,
    elapsed: float,
    engine: Any,
    registry: MetricsRegistry,
) -> str:
    rate = processed / elapsed if elapsed else 0.0
    parts = [
        f"events={processed:,}",
        f"outputs={outputs:,}",
        f"rate={rate:,.0f}/s",
    ]
    probe = getattr(engine, "current_objects", None)
    if probe is not None:
        parts.append(f"live_objects={probe():,}")
    if registry.enabled:
        for name, short in (
            ("sem_counters_created_total", "counters_created"),
            ("sem_counters_expired_total", "counters_expired"),
            ("sem_recount_resets_total", "recount_resets"),
            ("hpc_partitions_live", "partitions"),
        ):
            value = registry.value(name)
            if value:
                parts.append(f"{short}={value:,.0f}")
    return "stats " + " ".join(parts)


def _explain_main(argv: list[str]) -> int:
    """``python -m repro explain``: parse, plan, estimate — offline.

    Engines are constructed (compilation is cheap) but no events are
    ingested and no worker processes are spawned, so this works with
    no stream at hand: paste a query, read the plan, exit 0.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro explain",
        description="Show the EXPLAIN plan (execution path, sharing "
        "strategy, cost estimate) for a query or workload without "
        "running any events.",
    )
    parser.add_argument(
        "query_text",
        nargs="?",
        metavar="QUERY",
        help="query text (or use --query-file / --workload-file)",
    )
    parser.add_argument("--query-file", help="file containing one query")
    parser.add_argument(
        "--workload-file",
        help="file of named queries ('name: PATTERN ...;')",
    )
    parser.add_argument(
        "--engine",
        choices=("aseq", "vectorized", "twostep"),
        default="aseq",
        help="single-query engine to plan for (default aseq)",
    )
    parser.add_argument(
        "--shared",
        action="store_true",
        help="plan a workload with Chop-Connect sharing",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the structured plan as JSON instead of text",
    )
    args = parser.parse_args(argv)
    sources = [args.query_text, args.query_file, args.workload_file]
    if sum(s is not None for s in sources) != 1:
        parser.error(
            "exactly one of QUERY / --query-file / --workload-file "
            "is required"
        )
    try:
        if args.query_text is not None:
            queries = [parse_query(args.query_text, name="q")]
        elif args.query_file is not None:
            with open(args.query_file, "r", encoding="utf-8") as handle:
                queries = [parse_query(handle.read(), name="q")]
        else:
            with open(args.workload_file, "r", encoding="utf-8") as handle:
                queries = parse_workload(handle.read())
        if len(queries) > 1 or args.workload_file is not None:
            engine: Any = (
                WorkloadEngine(queries)
                if args.shared
                else UnsharedEngine(queries)
            )
        elif args.engine == "twostep":
            engine = TwoStepEngine(queries[0])
        else:
            engine = ASeqEngine(
                queries[0], vectorized=args.engine == "vectorized"
            )
        plan = _explain_plan(engine)
    except (ReproError, OSError) as error:
        _log.error(
            "explain_failed",
            message=f"error: {error}",
            error=type(error).__name__,
        )
        return 1
    try:
        if args.json:
            print(json.dumps(plan, indent=2, sort_keys=True))
        else:
            print(render_explain(plan), end="")
        sys.stdout.flush()
    except BrokenPipeError:
        # Downstream closed early (`| head`, `| grep -q`): not an error.
        # Point stdout at devnull so interpreter-exit flush stays quiet.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "explain":
        return _explain_main(argv[1:])
    args = build_parser().parse_args(argv)

    instrument = (
        bool(args.metrics_out)
        or args.stats_every > 0
        or args.admin_port is not None
        or args.history_every > 0
    )
    funnel_on = args.funnel or bool(args.workload_profile)
    registry = MetricsRegistry() if instrument else NULL_REGISTRY
    trace = (
        TraceRecorder(capacity=args.trace_capacity)
        if args.dump_trace
        else NULL_TRACER
    )
    previous_default = set_default_registry(registry if instrument else None)
    # Every engine build below resolves the default funnel, so one
    # install covers the inline, resilient, and sharded paths alike
    # (the FunnelRecorder brings its own registry when the shared one
    # is disabled, e.g. --workload-profile without --metrics-out).
    previous_funnel = set_default_funnel(
        FunnelRecorder(registry) if funnel_on else None
    )
    previous_log = install_config(LogConfig(json_mode=args.log_json))
    admin = None
    history: HistoryRecorder | None = None
    profiler: SamplingProfiler | None = None
    profile_on = args.profile or bool(args.profile_out)
    try:
        queries = _load_queries(args)
        events = _load_events(args)
        if args.history_every > 0:
            history = default_history(
                registry, interval_s=args.history_every
            ).start()
        if args.shards > 0:
            # The sharded engine owns its profilers (one per process).
            return _run_sharded(
                args, queries, events, registry, trace, history
            )
        if args.shard_journal:
            raise SystemExit("--shard-journal requires --shards N")
        if args.router_journal:
            raise SystemExit("--router-journal requires --shards N")
        if args.transport != "pipe" or args.shard_worker:
            raise SystemExit(
                "--transport/--shard-worker require --shards N"
            )
        if args.workers_file or args.membership_listen:
            raise SystemExit(
                "--workers-file/--membership-listen require --shards N"
            )
        if profile_on:
            profiler = SamplingProfiler().start()
        if args.journal or args.recover:
            if args.columnar:
                raise SystemExit(
                    "--columnar is not supported with --journal/"
                    "--recover (the supervised engine journals "
                    "per-event)"
                )
            return _run_resilient(
                args, queries, events, registry, trace, history, profiler
            )
        if args.columnar:
            return _run_columnar(
                args, queries, events, registry, trace, history, profiler
            )
        engine = _build_engine(args, queries, registry, trace)
        if args.explain:
            _print_explain(engine)
        if history is not None:
            refresh = getattr(engine, "refresh_cost_metrics", None)
            if callable(refresh):
                history.set_refresher(refresh)
        admin = _start_admin(args, engine, registry, trace, history, profiler)

        cross_check = None
        if args.engine == "both" and len(queries) == 1:
            cross_check = TwoStepEngine(queries[0], registry=NULL_REGISTRY)

        stats_every = max(0, args.stats_every)
        m_ingested = registry.counter(
            "events_ingested_total", "events pumped through the run loop"
        )
        m_latency = registry.histogram(
            "event_latency_us", "per-event processing latency (µs)"
        )
        processed = 0
        outputs = 0
        started = time.perf_counter()
        batch_size = args.batch_size
        if batch_size > 1 and hasattr(engine, "process_batch"):
            from itertools import islice

            iterator = iter(events)
            while True:
                chunk = list(islice(iterator, batch_size))
                if not chunk:
                    break
                if instrument:
                    chunk_started = time.perf_counter()
                    emitted = engine.process_batch(chunk)
                    m_latency.observe(
                        (time.perf_counter() - chunk_started)
                        * 1e6 / len(chunk)
                    )
                    m_ingested.inc(len(chunk))
                else:
                    emitted = engine.process_batch(chunk)
                if cross_check is not None:
                    for event in chunk:
                        cross_check.process(event)
                previous = processed
                processed += len(chunk)
                outputs += len(emitted)
                if args.emit == "every":
                    for event, fresh in emitted:
                        print(f"{event.ts}\t{fresh}")
                if stats_every and (
                    processed // stats_every != previous // stats_every
                ):
                    _log.info(
                        "stats",
                        message=_stats_line(
                            processed, outputs,
                            time.perf_counter() - started, engine, registry,
                        ),
                    )
        else:
            for event in events:
                if instrument:
                    event_started = time.perf_counter()
                    fresh = engine.process(event)
                    m_latency.observe(
                        (time.perf_counter() - event_started) * 1e6
                    )
                    m_ingested.inc()
                else:
                    fresh = engine.process(event)
                if cross_check is not None:
                    cross_check.process(event)
                processed += 1
                if fresh is not None:
                    outputs += 1
                    if args.emit == "every":
                        print(f"{event.ts}\t{fresh}")
                if stats_every and processed % stats_every == 0:
                    _log.info(
                        "stats",
                        message=_stats_line(
                            processed, outputs,
                            time.perf_counter() - started, engine, registry,
                        ),
                    )
        elapsed = time.perf_counter() - started

        final = engine.result()
        if args.emit != "none":
            print(f"result\t{final}")
        if cross_check is not None:
            baseline = cross_check.result()
            status = "AGREE" if baseline == final else "DISAGREE"
            _log.info(
                "cross_check",
                message=f"cross-check (two-step)\t{baseline}\t{status}",
                baseline=str(baseline),
                status=status,
            )
            if baseline != final:
                return 2
        rate = processed / elapsed if elapsed else 0.0
        _log.info(
            "run_complete",
            message=f"{processed:,} events in {elapsed:.2f}s "
            f"({rate:,.0f} ev/s), {outputs:,} outputs",
            events=processed,
            outputs=outputs,
            elapsed_s=round(elapsed, 3),
        )
        if args.metrics_out:
            write_prometheus(registry, args.metrics_out)
            json_path = args.metrics_out + ".json"
            write_json_snapshot(
                registry,
                json_path,
                run={
                    "events": processed,
                    "outputs": outputs,
                    "elapsed_s": elapsed,
                    "events_per_s": rate,
                },
            )
            _log.info(
                "metrics_written",
                message=f"wrote metrics to {args.metrics_out} "
                f"(+ {json_path})",
                path=args.metrics_out,
            )
        if args.dump_trace:
            print(trace.format(), file=sys.stderr)
        _write_profile(args, engine)
        return 0
    except (ReproError, OSError) as error:
        _log.error(
            "run_failed",
            message=f"error: {error}",
            error=type(error).__name__,
        )
        return 1
    finally:
        _stop_admin(admin, args.admin_linger)
        if profiler is not None:
            profiler.stop()
            if args.profile_out:
                with open(
                    args.profile_out, "w", encoding="utf-8"
                ) as handle:
                    handle.write(
                        collapsed_text(profiler.counts(), root="main")
                    )
                _log.info(
                    "profile_written",
                    message=f"wrote profile to {args.profile_out}",
                    path=args.profile_out,
                )
        if history is not None:
            history.stop()
        install_config(previous_log)
        set_default_funnel(previous_funnel)
        set_default_registry(previous_default)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
