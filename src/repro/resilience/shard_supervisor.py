"""Shard supervision: heartbeats, per-shard journals, restart health.

This module is the multiprocess analogue of
:mod:`repro.resilience.supervisor`: where that module isolates a
*registration* that raises inside a single process, this one watches
whole worker *processes* on behalf of
:class:`~repro.engine.sharded.ShardedStreamEngine` and gives the router
what it needs to rebuild one exactly:

* :class:`HeartbeatSupervisor` — a daemon thread that pings every shard
  over its control pipe, tracks heartbeat age and consecutive misses,
  and calls back into the engine to revive a shard that died, wedged,
  or reported a poisoned executor;
* :class:`MemoryShardLog` / :class:`DiskShardLog` — the per-shard
  journal of every record the router successfully delivered to that
  shard, replayable from a sequence offset so a restarted worker can be
  re-seeded *exactly* (checkpoint + suffix replay).  The disk backend
  reuses :class:`~repro.resilience.journal.EventJournal`, partitioned
  one directory per shard, and persists the shard's engine checkpoints
  next to its segments;
* :class:`ShardHealth` — the per-shard record the ops plane surfaces
  (restarts, failures, heartbeat age, degraded flag).

Everything here is engine-agnostic on purpose: the supervisor talks to
the router through two callbacks (``ping`` and ``revive``) and never
imports the sharded engine, so the dependency arrow keeps pointing from
``repro.engine`` down into ``repro.resilience``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.events.event import Event
from repro.obs.logging import get_logger
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.resilience.checkpointer import write_checkpoint
from repro.resilience.journal import (
    EventJournal,
    prune_segments,
    read_journal,
)

_log = get_logger("shard_supervisor")

#: One routed record as it crosses the pipe: ``(type, ts, attrs|None)``.
ShardRecord = tuple


# ----- per-shard journal ----------------------------------------------------


class MemoryShardLog:
    """In-memory per-shard record log (the default backend).

    Holds every record delivered to one shard since the shard's last
    checkpoint; ``truncate_to`` forgets the prefix a checkpoint has made
    redundant, so memory stays bounded as long as checkpoints are taken.
    """

    def __init__(self) -> None:
        self._base = 0
        self._records: list[ShardRecord] = []

    @property
    def next_seq(self) -> int:
        return self._base + len(self._records)

    def append(self, records: list[ShardRecord]) -> None:
        self._records.extend(records)

    def replay(self, start_seq: int = 0) -> Iterator[ShardRecord]:
        start = max(0, start_seq - self._base)
        yield from list(self._records[start:])

    def replay_seqs(
        self, start_seq: int = 0
    ) -> Iterator[tuple[int, ShardRecord]]:
        """Replay with each record's journal sequence (dedup tags)."""
        start = max(0, start_seq - self._base)
        base = self._base
        for offset, record in enumerate(list(self._records[start:])):
            yield (base + start + offset, record)

    def truncate_to(self, seq: int) -> None:
        """Forget records with sequence below ``seq``."""
        drop = min(len(self._records), max(0, seq - self._base))
        if drop:
            del self._records[:drop]
            self._base += drop

    def save_checkpoint(self, state: dict[str, Any]) -> None:
        """Memory backend keeps checkpoints on the worker handle only."""

    def close(self) -> None:
        self._records.clear()


class DiskShardLog:
    """Durable per-shard record log backed by an :class:`EventJournal`.

    One journal directory per shard (``<dir>/shard-NN``); the shard's
    engine checkpoints are written into the same directory with
    :func:`~repro.resilience.checkpointer.write_checkpoint`, so the
    whole re-seed recipe for one shard lives in one place.  Segments
    fully covered by the latest checkpoint are pruned.
    """

    def __init__(
        self,
        directory: str | Path,
        fsync: str = "never",
        registry: MetricsRegistry | None = None,
    ):
        self.directory = Path(directory)
        self._journal = EventJournal(
            self.directory, fsync=fsync, registry=registry
        )

    @property
    def next_seq(self) -> int:
        return self._journal.next_seq

    def append(self, records: list[ShardRecord]) -> None:
        self._journal.append_batch(
            [Event(t, ts, attrs) for t, ts, attrs in records]
        )

    def replay(self, start_seq: int = 0) -> Iterator[ShardRecord]:
        self._journal.flush()
        for _, event in read_journal(self.directory, start_seq=start_seq):
            yield (event.event_type, event.ts, event.attrs or None)

    def replay_seqs(
        self, start_seq: int = 0
    ) -> Iterator[tuple[int, ShardRecord]]:
        """Replay with each record's journal sequence (dedup tags)."""
        self._journal.flush()
        for seq, event in read_journal(self.directory, start_seq=start_seq):
            yield (seq, (event.event_type, event.ts, event.attrs or None))

    def truncate_to(self, seq: int) -> None:
        prune_segments(self.directory, seq)

    def save_checkpoint(self, state: dict[str, Any]) -> None:
        write_checkpoint(self.directory, state)

    def close(self) -> None:
        self._journal.close()


def open_shard_log(
    directory: str | Path | None,
    fsync: str = "never",
    registry: MetricsRegistry | None = None,
) -> MemoryShardLog | DiskShardLog:
    """The shard-log backend for one shard: disk when a directory is
    given (crash-durable, prunable segments), memory otherwise."""
    if directory is None:
        return MemoryShardLog()
    return DiskShardLog(directory, fsync=fsync, registry=registry)


# ----- health bookkeeping ---------------------------------------------------


@dataclass
class ShardHealth:
    """Per-shard supervision state surfaced by the ops plane."""

    shard: int
    alive: bool = True
    degraded: bool = False
    restarts: int = 0
    failures: int = 0
    missed_heartbeats: int = 0
    last_pong_at: float | None = field(default=None, repr=False)
    last_failure: str | None = None
    #: Round-trip time of the last answered heartbeat ping, and the
    #: worker wall-clock skew estimated from it (worker clock minus
    #: router clock, RTT/2-corrected). The skew feeds the trace plane:
    #: worker span wall times are normalized into the router's clock.
    rtt_s: float | None = field(default=None, repr=False)
    clock_skew_s: float | None = field(default=None, repr=False)

    def snapshot(self) -> dict[str, Any]:
        age = (
            None
            if self.last_pong_at is None
            else max(0.0, time.monotonic() - self.last_pong_at)
        )
        return {
            "shard": self.shard,
            "alive": self.alive,
            "degraded": self.degraded,
            "restarts": self.restarts,
            "failures": self.failures,
            "missed_heartbeats": self.missed_heartbeats,
            "heartbeat_age_s": age,
            "rtt_s": self.rtt_s,
            "clock_skew_s": self.clock_skew_s,
            "last_failure": self.last_failure,
        }


# ----- the heartbeat thread -------------------------------------------------


class HeartbeatSupervisor:
    """Daemon thread pinging every shard and reviving the unresponsive.

    ``ping(shard)`` is supplied by the engine and must return a
    ``(status, payload)`` pair without blocking for long:

    ========== ==========================================================
    ``ok``     the worker answered; payload is its pong dict
    ``busy``   the router holds the shard's lock — skip this round
    ``miss``   no pong within the poll window — counts toward the limit
    ``dead``   the process is gone or the pipe is broken
    ``failed`` the worker answered but reports a poisoned engine;
               payload carries the failure string
    ========== ==========================================================

    ``revive(shard, reason)`` is called (from this thread) when a shard
    is ``dead``, ``failed``, or has missed ``max_missed`` consecutive
    heartbeats; the engine restarts and re-seeds the worker (or folds it
    into the local lane once its restart budget is spent).

    ``tick()``, when given, runs once per monitoring round before the
    pings — the engine wires its membership poll through it so worker
    joins/leaves ride the same thread and cadence as liveness. A tick
    that raises is logged and never kills the thread.
    """

    def __init__(
        self,
        shards: int,
        ping: Callable[[int], tuple[str, Any]],
        revive: Callable[[int, str], None],
        interval_s: float = 0.5,
        max_missed: int = 3,
        registry: MetricsRegistry | None = None,
        health: list[ShardHealth] | None = None,
        tick: Callable[[], None] | None = None,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if max_missed < 1:
            raise ValueError("max_missed must be at least 1")
        self.interval_s = interval_s
        self.max_missed = max_missed
        self._ping = ping
        self._revive = revive
        self._tick = tick
        # The engine usually owns the health records (it updates restart
        # and failure counts from its own revive path) and shares them.
        self.health = (
            health
            if health is not None
            else [ShardHealth(shard=index) for index in range(shards)]
        )
        registry = resolve_registry(registry)
        self._g_age = [
            registry.gauge(
                "shard_heartbeat_age_seconds",
                "seconds since this shard last answered a heartbeat",
                shard=str(index),
            )
            for index in range(shards)
        ]
        self._m_misses = registry.counter(
            "shard_heartbeat_misses_total",
            "heartbeat rounds a shard failed to answer in time",
        )
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ----- lifecycle -------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="shard-heartbeats", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=self.interval_s * 2 + 1.0)
            self._thread = None

    def snapshot(self) -> list[dict[str, Any]]:
        return [health.snapshot() for health in self.health]

    # ----- the monitoring loop ---------------------------------------------

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            if self._tick is not None:
                try:
                    self._tick()
                except Exception as error:  # defensive: thread survives
                    _log.warning(
                        "tick_error",
                        message=f"supervisor tick raised {error!r}",
                        error=type(error).__name__,
                    )
            for health in self.health:
                if self._stop.is_set():
                    return
                if health.degraded:
                    continue
                self._check(health)

    def _check(self, health: ShardHealth) -> None:
        try:
            status, payload = self._ping(health.shard)
        except Exception as error:  # defensive: never kill the thread
            _log.warning(
                "ping_error",
                message=f"heartbeat ping of shard {health.shard} "
                f"raised {error!r}",
                shard=health.shard,
            )
            return
        now = time.monotonic()
        if status == "busy":
            return
        if status == "ok":
            health.missed_heartbeats = 0
            health.alive = True
            health.last_pong_at = now
            self._g_age[health.shard].set(0.0)
            return
        if health.last_pong_at is not None:
            self._g_age[health.shard].set(now - health.last_pong_at)
        if status == "miss":
            health.missed_heartbeats += 1
            self._m_misses.inc()
            if health.missed_heartbeats < self.max_missed:
                return
            reason = (
                f"missed {health.missed_heartbeats} consecutive heartbeats"
            )
        elif status == "failed":
            reason = f"worker reported failure: {payload}"
        else:  # dead
            reason = "worker process died"
        health.alive = False
        self._fire(health, reason)

    def _fire(self, health: ShardHealth, reason: str) -> None:
        try:
            self._revive(health.shard, reason)
        except Exception as error:  # engine degraded/raised: log and go on
            _log.warning(
                "revive_error",
                message=f"revive of shard {health.shard} failed: {error!r}",
                shard=health.shard,
                error=type(error).__name__,
            )
        health.missed_heartbeats = 0
