"""Seeded in-process chaos TCP proxy for the networked shard plane.

:class:`NetFaultProxy` sits between the router's ``SocketTransport``
and a listening shard worker and misbehaves like a real network, on
demand or probabilistically from one integer seed:

* **partition** — hold the link open but move no bytes (the shape of a
  dead switch or a silently vanished host: no FIN, no RST). Heals on
  request; buffered bytes then flow, like a TCP retransmit burst.
* **delay** — sleep a seeded number of milliseconds before forwarding
  a chunk (slow link; must NOT be confused with a dead peer).
* **truncate** — forward a prefix of a chunk, then cut both directions
  (a connection dying mid-frame; the peer sees a torn frame).
* **corrupt** — flip one byte of a forwarded chunk (the CRC32 check's
  reason to exist).
* **reorder** — swap a chunk with its successor (byte-stream torture;
  the framer sees it as corruption and must fail typed, not undefined).

Every probabilistic choice is drawn from ``random.Random`` seeded by
``(seed, connection ordinal, direction)``, so a failing chaos run
replays with the same ``REPRO_FAULT_SEED`` the rest of the resilience
suite uses. Chunk boundaries depend on kernel timing, so byte-exact
replay is not promised — seeded rates and fault kinds are.

The proxy is deliberately in-process (threads, no subprocess): tests
compose it with :class:`~repro.resilience.faults.FaultPlan` kills and
the differential harness without any extra orchestration.
"""

from __future__ import annotations

import random
import select
import socket
import threading
import time
from dataclasses import dataclass, field

from repro.resilience.faults import fault_seed

_CHUNK = 65536
_TICK_S = 0.05


@dataclass
class NetFaultPlan:
    """Per-chunk fault probabilities for one proxy (all seeded).

    Rates are independent per forwarded chunk and per direction. The
    default plan injects nothing — faults then come only from the
    explicit :meth:`NetFaultProxy.partition` /
    :meth:`NetFaultProxy.cut` style triggers.
    """

    corrupt_rate: float = 0.0
    delay_rate: float = 0.0
    delay_ms: tuple[int, int] = (1, 20)
    truncate_rate: float = 0.0
    reorder_rate: float = 0.0

    def any_rate(self) -> bool:
        return any(
            rate > 0.0
            for rate in (
                self.corrupt_rate, self.delay_rate,
                self.truncate_rate, self.reorder_rate,
            )
        )


@dataclass
class _Link:
    """One proxied connection: the two sockets and its pump threads."""

    client: socket.socket
    upstream: socket.socket
    threads: list[threading.Thread] = field(default_factory=list)
    dead: threading.Event = field(default_factory=threading.Event)

    def cut(self) -> None:
        self.dead.set()
        for sock in (self.client, self.upstream):
            try:
                sock.close()
            except OSError:
                pass


class NetFaultProxy:
    """A chaos TCP proxy in front of one worker (or registry) address.

    Usage::

        with NetFaultProxy(("127.0.0.1", worker_port), seed=2,
                           plan=NetFaultPlan(corrupt_rate=0.01)) as proxy:
            engine = ShardedStreamEngine(
                ..., transport="tcp",
                worker_addresses=[proxy.address_text], ...)

    ``counts`` tallies every fault actually injected, keyed by kind.
    """

    def __init__(
        self,
        target: tuple[str, int],
        plan: NetFaultPlan | None = None,
        seed: int | None = None,
        host: str = "127.0.0.1",
    ):
        self.target = (target[0], int(target[1]))
        self.plan = plan or NetFaultPlan()
        self.seed = seed if seed is not None else fault_seed()
        self._host = host
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._links: list[_Link] = []
        self._lock = threading.Lock()
        self._stopping = threading.Event()
        self._partitioned = threading.Event()
        self._conn_ordinal = 0
        self.counts: dict[str, int] = {
            "partition": 0, "delay": 0, "truncate": 0,
            "corrupt": 0, "reorder": 0,
        }
        self.address: tuple[str, int] | None = None

    # ----- lifecycle --------------------------------------------------------

    def start(self) -> "NetFaultProxy":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, 0))
        listener.listen(32)
        listener.settimeout(_TICK_S)
        self._listener = listener
        self.address = listener.getsockname()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True, name="netfault-accept"
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            links = list(self._links)
        for link in links:
            link.cut()
        if self._accept_thread is not None:
            self._accept_thread.join(2.0)

    def __enter__(self) -> "NetFaultProxy":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def address_text(self) -> str:
        if self.address is None:
            raise RuntimeError("proxy not started")
        return f"{self.address[0]}:{self.address[1]}"

    # ----- explicit fault triggers ------------------------------------------

    def partition(self) -> None:
        """Stop moving bytes while keeping every connection open."""
        self._bump("partition")
        self._partitioned.set()

    def heal(self) -> None:
        """End a partition; held bytes flow again."""
        self._partitioned.clear()

    @property
    def partitioned(self) -> bool:
        return self._partitioned.is_set()

    def cut_all(self) -> None:
        """Hard-close every proxied connection (both directions)."""
        with self._lock:
            links = list(self._links)
        for link in links:
            link.cut()

    def live_links(self) -> int:
        with self._lock:
            self._links = [
                link for link in self._links if not link.dead.is_set()
            ]
            return len(self._links)

    # ----- plumbing ---------------------------------------------------------

    def _bump(self, kind: str) -> None:
        with self._lock:
            self.counts[kind] += 1

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                client, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                upstream = socket.create_connection(self.target, timeout=5.0)
            except OSError:
                client.close()
                continue
            for sock in (client, upstream):
                try:
                    sock.setsockopt(
                        socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                    )
                except OSError:  # pragma: no cover
                    pass
            with self._lock:
                ordinal = self._conn_ordinal
                self._conn_ordinal += 1
            link = _Link(client=client, upstream=upstream)
            for direction, (src, dst) in enumerate(
                ((client, upstream), (upstream, client))
            ):
                rng = random.Random(
                    (self.seed * 1000003 + ordinal) * 2 + direction
                )
                thread = threading.Thread(
                    target=self._pump,
                    args=(link, src, dst, rng),
                    daemon=True,
                    name=f"netfault-pump-{ordinal}-{direction}",
                )
                link.threads.append(thread)
                thread.start()
            with self._lock:
                self._links.append(link)

    def _pump(
        self,
        link: _Link,
        src: socket.socket,
        dst: socket.socket,
        rng: random.Random,
    ) -> None:
        held: bytes | None = None  # chunk parked by a reorder draw
        while not link.dead.is_set() and not self._stopping.is_set():
            try:
                ready = select.select([src], [], [], _TICK_S)[0]
            except (OSError, ValueError):
                break
            if not ready:
                continue
            try:
                chunk = src.recv(_CHUNK)
            except OSError:
                break
            if not chunk:
                break
            # Partition: hold the bytes (and any reorder leftovers)
            # until healed — the peer sees pure silence, no FIN.
            while self._partitioned.is_set():
                if link.dead.is_set() or self._stopping.is_set():
                    return
                time.sleep(_TICK_S)
            plan = self.plan
            if plan.delay_rate and rng.random() < plan.delay_rate:
                self._bump("delay")
                low, high = plan.delay_ms
                time.sleep(rng.randint(low, high) / 1000.0)
            if plan.corrupt_rate and rng.random() < plan.corrupt_rate:
                self._bump("corrupt")
                mutable = bytearray(chunk)
                at = rng.randrange(len(mutable))
                mutable[at] ^= 1 + rng.randrange(255)
                chunk = bytes(mutable)
            if plan.truncate_rate and rng.random() < plan.truncate_rate:
                self._bump("truncate")
                keep = rng.randrange(len(chunk))
                try:
                    if keep:
                        dst.sendall(chunk[:keep])
                except OSError:
                    pass
                link.cut()
                return
            if (
                plan.reorder_rate
                and held is None
                and len(chunk) > 1
                and rng.random() < plan.reorder_rate
            ):
                self._bump("reorder")
                held = chunk
                continue
            try:
                dst.sendall(chunk)
                if held is not None:
                    dst.sendall(held)
                    held = None
            except OSError:
                break
        link.cut()
