"""Elastic worker membership for the sharded runtime.

The sharded engine's **partition count is fixed for the life of a
query** — ``shard_of`` hashes a key to one of ``shards`` partitions,
and that mapping is what makes merged aggregates bit-identical across
any placement. What *is* elastic is **ownership**: which worker
process serves which partition. :class:`WorkerRegistry` is the
router-side source of truth for the worker fleet:

* **static config** — a ``--workers-file`` with one ``HOST:PORT`` per
  line (``#`` comments, blank lines ignored). The file is hot-reloaded
  on mtime change: added lines become joins, removed lines become
  graceful leaves. Lines without a colon name *virtual local members*
  (the pipe transport's fork slots), which lets the whole membership
  machinery — and its differential tests — run transport-agnostic.
* **self-registration** — :meth:`listen` opens a framed-TCP join
  listener; ``python -m repro.shard_worker --listen … --advertise``
  sends ``("join", {"address": …})`` and the worker becomes a live
  member without touching the file (``("leave", …)`` de-registers).
* **liveness** — the engine's heartbeat/revive machinery reports
  permanently unreachable members through :meth:`mark_dead`; dead
  members drop out of placement until they re-register.

Membership *changes* are queued as events and consumed by the engine's
``poll_membership()`` (wired into the heartbeat loop), which reacts by
migrating partitions with an exact state handoff — see
``ShardedStreamEngine.migrate_partition``. The registry itself moves
no state; it only answers "who is in the fleet, and who just came or
went".
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.errors import TransportError
from repro.obs.logging import get_logger
from repro.obs.registry import MetricsRegistry, resolve_registry

_log = get_logger("membership")

_ACCEPT_TICK_S = 0.25

#: Membership event kinds handed to ``poll()`` consumers.
JOIN, LEAVE, DEAD = "join", "leave", "dead"


@dataclass
class MemberInfo:
    """One worker in the fleet, live or not."""

    member_id: str
    #: ``(host, port)`` for a networked worker; None for a virtual
    #: local member (a pipe-transport fork slot or a transport-spawned
    #: localhost listener).
    address: tuple[str, int] | None = None
    #: "file", "advertised", or "static" (constructor-provided).
    source: str = "static"
    status: str = "live"  # "live" | "left" | "dead"
    pid: int | None = None
    generation: int = 0
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def live(self) -> bool:
        return self.status == "live"

    def snapshot(self) -> dict[str, Any]:
        return {
            "member_id": self.member_id,
            "address": (
                f"{self.address[0]}:{self.address[1]}"
                if self.address else None
            ),
            "source": self.source,
            "status": self.status,
            "pid": self.pid,
            "generation": self.generation,
        }


def _parse_member(text: str) -> tuple[str, tuple[str, int] | None]:
    """A workers-file line → ``(member_id, address)``."""
    text = text.strip()
    if ":" not in text:
        return text, None
    host, _, port = text.rpartition(":")
    if not port.isdigit():
        raise TransportError(
            f"bad workers-file entry {text!r}: expected HOST:PORT "
            f"or a bare local member name"
        )
    host = host or "127.0.0.1"
    return f"{host}:{port}", (host, int(port))


class WorkerRegistry:
    """Tracks the elastic worker fleet and queues membership changes.

    Thread-safe: the join listener, the heartbeat tick, and test code
    may all touch it concurrently.
    """

    def __init__(
        self,
        workers_file: str | Path | None = None,
        members: Iterable[str] | None = None,
        registry: MetricsRegistry | None = None,
        token: str | None = None,
    ):
        self._lock = threading.RLock()
        self._members: dict[str, MemberInfo] = {}
        self._events: deque[tuple[str, str]] = deque()
        self._workers_file = Path(workers_file) if workers_file else None
        self._file_mtime: float | None = None
        self._file_members: set[str] = set()
        self._listener: socket.socket | None = None
        self._listen_thread: threading.Thread | None = None
        self._stopping = threading.Event()
        if token is None:
            from repro.engine.transport import transport_token

            token = transport_token()
        self._token = token
        metrics = resolve_registry(registry)
        self._g_workers = metrics.gauge(
            "repro_membership_workers",
            "live workers known to the registry",
        )
        self._m_joins = metrics.counter(
            "repro_membership_joins_total",
            "workers that joined the fleet (file, advertise, or static)",
        )
        self._m_leaves = metrics.counter(
            "repro_membership_leaves_total",
            "workers that left the fleet gracefully",
        )
        self._m_deaths = metrics.counter(
            "repro_membership_deaths_total",
            "workers declared permanently dead by the router",
        )
        if members is not None:
            for entry in members:
                self._admit(str(entry), source="static", quiet=True)
        if self._workers_file is not None:
            self._load_file(initial=True)
        self._export()

    # ----- internal state transitions ---------------------------------------

    def _export(self) -> None:
        self._g_workers.set(
            sum(1 for m in self._members.values() if m.live)
        )

    def _admit(
        self, entry: str, source: str, quiet: bool = False,
        pid: int | None = None,
    ) -> MemberInfo:
        member_id, address = _parse_member(entry)
        member = self._members.get(member_id)
        if member is not None and member.live:
            return member
        if member is None:
            member = MemberInfo(
                member_id=member_id, address=address, source=source,
                pid=pid,
            )
            self._members[member_id] = member
        else:
            member.status = "live"
            member.source = source
            member.generation += 1
            member.pid = pid if pid is not None else member.pid
        self._m_joins.inc()
        if not quiet:
            self._events.append((JOIN, member_id))
        _log.info(
            "member_joined",
            message=f"worker {member_id} joined via {source}",
            member=member_id,
            source=source,
        )
        self._export()
        return member

    def _retire(self, member_id: str, kind: str) -> None:
        member = self._members.get(member_id)
        if member is None or not member.live:
            return
        member.status = "dead" if kind == DEAD else "left"
        if kind == DEAD:
            self._m_deaths.inc()
        else:
            self._m_leaves.inc()
        self._events.append((kind, member_id))
        _log.warning(
            "member_retired",
            message=f"worker {member_id} {member.status}",
            member=member_id,
            status=member.status,
        )
        self._export()

    # ----- public API -------------------------------------------------------

    def register(
        self, entry: str, source: str = "advertised",
        pid: int | None = None,
    ) -> MemberInfo:
        """Admit (or revive) a member; queues a join event."""
        with self._lock:
            return self._admit(entry, source=source, pid=pid)

    def leave(self, member_id: str) -> None:
        """Graceful departure; queues a leave event."""
        with self._lock:
            self._retire(member_id, LEAVE)

    def mark_dead(self, member_id: str) -> None:
        """Permanent death (reconnect budget exhausted); queues it."""
        with self._lock:
            self._retire(member_id, DEAD)

    def get(self, member_id: str) -> MemberInfo | None:
        with self._lock:
            return self._members.get(member_id)

    def live_members(self) -> list[MemberInfo]:
        """Live members in stable (insertion) order."""
        with self._lock:
            return [m for m in self._members.values() if m.live]

    def poll(self) -> list[tuple[str, str]]:
        """Drain queued membership events (after a file refresh)."""
        with self._lock:
            self._refresh_file_locked()
            events = list(self._events)
            self._events.clear()
            return events

    def snapshot(self) -> dict[str, Any]:
        """A JSON-safe fleet view for ``/healthz`` and ``inspect()``."""
        with self._lock:
            members = [m.snapshot() for m in self._members.values()]
        return {
            "live": sum(1 for m in members if m["status"] == "live"),
            "members": members,
            "workers_file": (
                str(self._workers_file) if self._workers_file else None
            ),
            "listen": (
                f"{self.listen_address[0]}:{self.listen_address[1]}"
                if self.listen_address else None
            ),
        }

    # ----- workers-file hot reload ------------------------------------------

    def _read_file(self) -> list[str]:
        assert self._workers_file is not None
        try:
            text = self._workers_file.read_text()
        except OSError:
            return []
        entries: list[str] = []
        for line in text.splitlines():
            line = line.split("#", 1)[0].strip()
            if line:
                entries.append(line)
        return entries

    def _load_file(self, initial: bool = False) -> None:
        assert self._workers_file is not None
        try:
            mtime = self._workers_file.stat().st_mtime
        except OSError:
            mtime = None
        self._file_mtime = mtime
        current: set[str] = set()
        for entry in self._read_file():
            member_id, _ = _parse_member(entry)
            current.add(member_id)
            self._admit(entry, source="file", quiet=initial)
        for gone in self._file_members - current:
            member = self._members.get(gone)
            if member is not None and member.source == "file":
                self._retire(gone, LEAVE)
        self._file_members = current

    def _refresh_file_locked(self) -> None:
        if self._workers_file is None:
            return
        try:
            mtime = self._workers_file.stat().st_mtime
        except OSError:
            mtime = None
        if mtime != self._file_mtime:
            self._load_file()

    def refresh(self) -> None:
        """Force a workers-file re-read (tests; poll() does it too)."""
        with self._lock:
            if self._workers_file is not None:
                self._load_file()

    @property
    def can_grow(self) -> bool:
        """True when members can arrive without code changes: a
        workers file or a join listener is attached — the router may
        wait out an empty fleet instead of failing its first start."""
        return self._workers_file is not None or self._listener is not None

    def wait_for_members(self, timeout_s: float) -> bool:
        """Block until the fleet has a live member (or timeout).

        Covers the cold-start race: a router launched alongside
        ``--advertise`` workers (or before its workers file is
        written) must not fail its first ingest just because no
        member dialed in yet."""
        deadline = time.monotonic() + timeout_s
        while True:
            with self._lock:
                self._refresh_file_locked()
                if any(m.live for m in self._members.values()):
                    return True
            if time.monotonic() >= deadline or self._stopping.is_set():
                return False
            time.sleep(0.05)

    # ----- self-registration listener ---------------------------------------

    @property
    def listen_address(self) -> tuple[str, int] | None:
        if self._listener is None:
            return None
        try:
            return self._listener.getsockname()
        except OSError:  # pragma: no cover - closed under us
            return None

    def listen(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Open the join listener for ``--advertise`` self-registration."""
        if self._listener is not None:
            raise TransportError("registry is already listening")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen(16)
        listener.settimeout(_ACCEPT_TICK_S)
        self._listener = listener
        self._listen_thread = threading.Thread(
            target=self._serve_joins, daemon=True, name="membership-join"
        )
        self._listen_thread.start()
        return listener.getsockname()

    def _serve_joins(self) -> None:
        from repro.engine.transport import CHANNEL_ERRORS, FramedChannel

        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                sock, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            channel = FramedChannel(sock)
            try:
                if not channel.poll(10.0):
                    continue
                message = channel.recv()
                if (
                    not isinstance(message, tuple)
                    or len(message) != 2
                    or not isinstance(message[1], dict)
                ):
                    channel.send(("error", "malformed membership frame"))
                    continue
                action, payload = message
                if self._token and payload.get("token") != self._token:
                    channel.send(("error", "token mismatch"))
                    continue
                address = str(payload.get("address") or "")
                if action == "join" and address:
                    member = self.register(
                        address, source="advertised",
                        pid=payload.get("pid"),
                    )
                    channel.send(("ok", member.member_id))
                elif action == "leave" and address:
                    member_id, _ = _parse_member(address)
                    self.leave(member_id)
                    channel.send(("ok", member_id))
                else:
                    channel.send(("error", f"unknown action {action!r}"))
            except (*CHANNEL_ERRORS, ValueError):
                pass
            finally:
                channel.close()

    def close(self) -> None:
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._listen_thread is not None:
            self._listen_thread.join(2.0)
            self._listen_thread = None
        self._listener = None


def registry_from_cli(
    workers_file: str | None,
    metrics: MetricsRegistry | None = None,
) -> WorkerRegistry | None:
    """Build a registry for ``--workers-file`` (None when unset)."""
    if not workers_file:
        return None
    path = Path(workers_file)
    if not path.exists():
        raise TransportError(f"workers file {workers_file!r} does not exist")
    return WorkerRegistry(workers_file=path, registry=metrics)


__all__ = [
    "JOIN",
    "LEAVE",
    "DEAD",
    "MemberInfo",
    "WorkerRegistry",
    "registry_from_cli",
]
