"""Fault-tolerant supervised runtime around the stream engine.

The paper's central property — all of A-Seq's state is a handful of
prefix counters — makes durability nearly free, and this package
spends that windfall: an append-only event journal
(:mod:`~repro.resilience.journal`), engine-wide atomic checkpoints
(:mod:`~repro.resilience.checkpointer`), crash recovery by
checkpoint-plus-replay (:mod:`~repro.resilience.recovery`),
per-registration failure isolation with a dead-letter queue and
quarantine (:mod:`~repro.resilience.supervisor`), and the seeded fault
injection the chaos tests drive it all with
(:mod:`~repro.resilience.faults`).
"""

from repro.resilience.checkpointer import (
    Checkpointer,
    engine_state,
    list_checkpoints,
    load_checkpoint,
    load_latest_checkpoint,
    write_checkpoint,
)
from repro.resilience.faults import (
    BurstySink,
    FaultPlan,
    FaultyExecutor,
    InjectedFault,
    corrupt_checkpoint,
    corrupt_latest_checkpoint,
    fault_seed,
    tear_journal_tail,
)
from repro.resilience.journal import (
    EventJournal,
    list_segments,
    read_journal,
)
from repro.resilience.recovery import recover
from repro.resilience.supervisor import (
    DeadLetter,
    DeadLetterQueue,
    SupervisedStreamEngine,
)

__all__ = [
    "BurstySink",
    "Checkpointer",
    "DeadLetter",
    "DeadLetterQueue",
    "EventJournal",
    "FaultPlan",
    "FaultyExecutor",
    "InjectedFault",
    "SupervisedStreamEngine",
    "corrupt_checkpoint",
    "corrupt_latest_checkpoint",
    "engine_state",
    "fault_seed",
    "list_checkpoints",
    "list_segments",
    "load_checkpoint",
    "load_latest_checkpoint",
    "read_journal",
    "recover",
    "tear_journal_tail",
    "write_checkpoint",
]
