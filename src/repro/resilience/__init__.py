"""Fault-tolerant supervised runtime around the stream engine.

The paper's central property — all of A-Seq's state is a handful of
prefix counters — makes durability nearly free, and this package
spends that windfall: an append-only event journal
(:mod:`~repro.resilience.journal`), engine-wide atomic checkpoints
(:mod:`~repro.resilience.checkpointer`), crash recovery by
checkpoint-plus-replay (:mod:`~repro.resilience.recovery`),
per-registration failure isolation with a dead-letter queue and
quarantine (:mod:`~repro.resilience.supervisor`), process-level shard
supervision — heartbeats, per-shard journals, exact worker revive —
(:mod:`~repro.resilience.shard_supervisor`), router durability —
partitioned ingest-lane WAL and exact router recovery —
(:mod:`~repro.resilience.router_recovery`), and the seeded fault
injection the chaos tests drive it all with
(:mod:`~repro.resilience.faults`).
"""

from repro.resilience.checkpointer import (
    Checkpointer,
    engine_state,
    list_checkpoints,
    load_checkpoint,
    load_latest_checkpoint,
    write_checkpoint,
)
from repro.resilience.faults import (
    BurstySink,
    FaultPlan,
    FaultyExecutor,
    InjectedFault,
    ShardKill,
    corrupt_checkpoint,
    corrupt_latest_checkpoint,
    fault_seed,
    hang_shard_pipe,
    kill_shard,
    stall_shard,
    tear_journal_tail,
)
from repro.resilience.journal import (
    EventJournal,
    list_segments,
    prune_segments,
    read_journal,
)
from repro.resilience.recovery import recover
from repro.resilience.router_recovery import (
    RouterLog,
    discover_lanes,
    recover_router,
)
from repro.resilience.shard_supervisor import (
    DiskShardLog,
    HeartbeatSupervisor,
    MemoryShardLog,
    ShardHealth,
    open_shard_log,
)
from repro.resilience.supervisor import (
    DeadLetter,
    DeadLetterQueue,
    SupervisedStreamEngine,
)

__all__ = [
    "BurstySink",
    "Checkpointer",
    "DeadLetter",
    "DeadLetterQueue",
    "DiskShardLog",
    "EventJournal",
    "FaultPlan",
    "FaultyExecutor",
    "HeartbeatSupervisor",
    "InjectedFault",
    "MemoryShardLog",
    "RouterLog",
    "ShardHealth",
    "ShardKill",
    "SupervisedStreamEngine",
    "corrupt_checkpoint",
    "corrupt_latest_checkpoint",
    "discover_lanes",
    "engine_state",
    "fault_seed",
    "hang_shard_pipe",
    "kill_shard",
    "list_checkpoints",
    "list_segments",
    "load_checkpoint",
    "load_latest_checkpoint",
    "open_shard_log",
    "prune_segments",
    "read_journal",
    "recover",
    "recover_router",
    "stall_shard",
    "tear_journal_tail",
    "write_checkpoint",
]
