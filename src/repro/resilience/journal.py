"""Append-only event journal (write-ahead log) for crash recovery.

The journal is the durability half of the recovery story: every event
is appended *before* it is dispatched to any executor, so after a crash
the engine state can be rebuilt as ``latest checkpoint + replay of the
journal suffix``. Because A-Seq checkpoints are tiny (a handful of
counters, see :mod:`repro.core.checkpoint`), the journal only ever
needs to cover the short gap since the last checkpoint — but it is
written unconditionally so *any* crash point is recoverable.

Format: JSON-lines segments. Each record is one line::

    <crc32-of-payload, 8 hex chars> <payload JSON>\\n

with the payload carrying the journal sequence number and the full
event (``{"seq": 17, "type": "DELL", "ts": 421, "attrs": {...}}``).
Segments rotate at a byte threshold and are named by the sequence
number of their first record (``journal-000000000000.wal``), so a
reader replaying from offset *n* can skip whole segments without
parsing them.

Torn writes: a crash mid-append leaves a partial or CRC-failing final
line in the *last* segment. The reader tolerates exactly that — it
stops cleanly at the first bad record of the last segment. A bad
record anywhere else is real corruption and raises
:class:`~repro.errors.JournalError`.

Durability policy (``fsync``): ``"never"`` leaves flushing to the OS
(fastest, loses the tail on power failure), ``"interval"`` fsyncs every
``fsync_interval`` appends, ``"always"`` fsyncs per record (slowest,
loses nothing). All three survive a process crash; the policy only
matters for whole-machine failures.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Iterator

from repro.errors import JournalError
from repro.events.event import Event
from repro.obs.registry import MetricsRegistry, resolve_registry

SEGMENT_PREFIX = "journal-"
SEGMENT_SUFFIX = ".wal"
FSYNC_POLICIES = ("never", "interval", "always")

_SEPARATORS = (",", ":")
# json.dumps(..., separators=...) constructs a fresh JSONEncoder per
# call; the journal encodes one record per event, so reuse one.
_encode_json = json.JSONEncoder(separators=_SEPARATORS).encode


def _segment_name(first_seq: int) -> str:
    return f"{SEGMENT_PREFIX}{first_seq:012d}{SEGMENT_SUFFIX}"


def _segment_first_seq(path: Path) -> int:
    stem = path.name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)]
    try:
        return int(stem)
    except ValueError as error:
        raise JournalError(f"malformed segment name {path.name!r}") from error


def list_segments(directory: str | Path) -> list[Path]:
    """Journal segments in ``directory``, ordered by first sequence."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    segments = [
        path
        for path in directory.iterdir()
        if path.name.startswith(SEGMENT_PREFIX)
        and path.name.endswith(SEGMENT_SUFFIX)
    ]
    return sorted(segments, key=_segment_first_seq)


def encode_record_bytes(seq: int, event: Event) -> bytes:
    """Render one journal line (CRC prefix + JSON payload) as bytes."""
    payload: dict = {"seq": seq, "type": event.event_type, "ts": event.ts}
    if event.attrs:
        payload["attrs"] = event.attrs
    data = _encode_json(payload).encode("utf-8")
    crc = zlib.crc32(data) & 0xFFFFFFFF
    return b"%08x %s\n" % (crc, data)


def encode_record(seq: int, event: Event) -> str:
    """Render one journal line (CRC prefix + JSON payload)."""
    return encode_record_bytes(seq, event).decode("utf-8")


def decode_record(line: str) -> tuple[int, Event]:
    """Parse and CRC-check one journal line; raises JournalError."""
    if len(line) < 10 or line[8] != " ":
        raise JournalError(f"malformed journal record: {line[:40]!r}")
    text = line[9:].rstrip("\n")
    try:
        stored_crc = int(line[:8], 16)
    except ValueError as error:
        raise JournalError(
            f"malformed CRC prefix: {line[:8]!r}"
        ) from error
    if zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF != stored_crc:
        raise JournalError("journal record failed its CRC check")
    try:
        payload = json.loads(text)
        seq = payload["seq"]
        event = Event(payload["type"], payload["ts"], payload.get("attrs"))
    except (ValueError, KeyError, TypeError) as error:
        raise JournalError(
            f"journal record payload is invalid: {error!r}"
        ) from error
    return seq, event


class EventJournal:
    """Append-only, segment-rotating journal writer.

    Opening a directory that already holds segments continues from
    the next sequence number after the last *valid* record (a torn
    final record is dropped and overwritten by position — the writer
    truncates it away so the new tail is clean).

    Parameters
    ----------
    directory:
        Where segments live; created if missing.
    segment_bytes:
        Rotate to a fresh segment once the current one reaches this
        size (checked before each append).
    fsync:
        ``"never"`` / ``"interval"`` / ``"always"`` — see module doc.
    fsync_interval:
        Appends between fsyncs under the ``"interval"`` policy.
    registry:
        Optional obs registry (``journal_records_total``,
        ``journal_bytes_total``, ``journal_fsyncs_total``,
        ``journal_backlog_bytes`` gauge).
    """

    def __init__(
        self,
        directory: str | Path,
        segment_bytes: int = 4 * 1024 * 1024,
        fsync: str = "never",
        fsync_interval: int = 256,
        registry: MetricsRegistry | None = None,
    ):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if segment_bytes <= 0:
            raise ValueError("segment_bytes must be positive")
        if fsync_interval <= 0:
            raise ValueError("fsync_interval must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._segment_bytes = segment_bytes
        self._fsync = fsync
        self._fsync_interval = fsync_interval
        self._since_fsync = 0
        registry = resolve_registry(registry)
        self._m_records = registry.counter(
            "journal_records_total", "events appended to the journal"
        )
        self._m_bytes = registry.counter(
            "journal_bytes_total", "bytes appended to the journal"
        )
        self._m_fsyncs = registry.counter(
            "journal_fsyncs_total", "fsync calls issued by the journal"
        )
        self._g_backlog = registry.gauge(
            "journal_backlog_bytes",
            "bytes appended since the last fsync (durability backlog)",
        )
        self._handle = None
        self._segment_path: Path | None = None
        self._segment_size = 0
        self.backlog_bytes = 0
        self.next_seq = 0
        self._resume()

    # ----- opening ---------------------------------------------------------

    def _resume(self) -> None:
        segments = list_segments(self.directory)
        if not segments:
            self._open_segment(0)
            return
        last = segments[-1]
        # Find the byte offset of the end of the last valid record so a
        # torn tail from a previous crash is truncated, not appended to.
        valid_end = 0
        last_seq = _segment_first_seq(last) - 1
        with open(last, "rb") as handle:
            for raw in handle:
                if not raw.endswith(b"\n"):
                    break  # torn: partial final line
                try:
                    seq, _ = decode_record(raw.decode("utf-8"))
                except (JournalError, UnicodeDecodeError):
                    break  # torn: CRC-failing final line
                last_seq = seq
                valid_end += len(raw)
        if valid_end < last.stat().st_size:
            with open(last, "r+b") as handle:
                handle.truncate(valid_end)
        self.next_seq = last_seq + 1
        self._segment_path = last
        self._segment_size = valid_end
        self._handle = open(last, "ab", buffering=0)

    def _open_segment(self, first_seq: int) -> None:
        if self._handle is not None:
            self._handle.close()
        self._segment_path = self.directory / _segment_name(first_seq)
        self._handle = open(self._segment_path, "ab", buffering=0)
        self._segment_size = 0
        self.next_seq = first_seq

    # ----- appending -------------------------------------------------------

    def append(self, event: Event) -> int:
        """Durably record one event; returns its journal sequence."""
        if self._handle is None:
            raise JournalError("journal is closed")
        if self._segment_size >= self._segment_bytes:
            self._open_segment(self.next_seq)
        seq = self.next_seq
        line = encode_record_bytes(seq, event)
        # Unbuffered binary handle: one write() syscall pushes the
        # record to the OS, so a process crash never loses a flushed
        # append (fsync policy only matters for machine failures).
        self._handle.write(line)
        size = len(line)
        self._segment_size += size
        self.backlog_bytes += size
        self.next_seq = seq + 1
        self._m_records.inc()
        self._m_bytes.inc(size)
        if self._fsync == "always":
            self.sync()
        elif self._fsync == "interval":
            self._since_fsync += 1
            if self._since_fsync >= self._fsync_interval:
                self.sync()
        else:
            self._g_backlog.set(self.backlog_bytes)
        return seq

    def append_batch(self, events: list[Event]) -> int:
        """Durably record a micro-batch in one ``write()`` syscall;
        returns the sequence of the first event (event *i* holds
        sequence ``first + i``).

        Durability policy is applied once per batch: ``"always"`` issues
        one fsync for the whole batch (the batch is the atom being made
        durable before dispatch), ``"interval"`` counts every record
        toward the interval.
        """
        if self._handle is None:
            raise JournalError("journal is closed")
        if not events:
            return self.next_seq
        if self._segment_size >= self._segment_bytes:
            self._open_segment(self.next_seq)
        first = self.next_seq
        buffer = bytearray()
        for offset, event in enumerate(events):
            buffer += encode_record_bytes(first + offset, event)
        self._handle.write(buffer)
        size = len(buffer)
        self._segment_size += size
        self.backlog_bytes += size
        self.next_seq = first + len(events)
        self._m_records.inc(len(events))
        self._m_bytes.inc(size)
        if self._fsync == "always":
            self.sync()
        elif self._fsync == "interval":
            self._since_fsync += len(events)
            if self._since_fsync >= self._fsync_interval:
                self.sync()
        else:
            self._g_backlog.set(self.backlog_bytes)
        return first

    def sync(self) -> None:
        """Flush buffered records and fsync the current segment."""
        if self._handle is None:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._since_fsync = 0
        self.backlog_bytes = 0
        self._m_fsyncs.inc()
        self._g_backlog.set(0)

    def flush(self) -> None:
        """Flush to the OS without forcing the disk write."""
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "EventJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def prune_segments(directory: str | Path, upto_seq: int) -> list[Path]:
    """Delete whole segments fully covered by ``seq < upto_seq``.

    A segment is prunable when the *next* segment starts at or below
    ``upto_seq`` — every record it holds is then older than the cutoff.
    The active (last) segment is never deleted. Used by per-shard
    journals once a checkpoint makes the prefix redundant. Returns the
    removed paths.
    """
    segments = list_segments(directory)
    removed: list[Path] = []
    for index, segment in enumerate(segments):
        if index + 1 >= len(segments):
            break  # never prune the active tail segment
        if _segment_first_seq(segments[index + 1]) <= upto_seq:
            try:
                segment.unlink()
            except FileNotFoundError:
                continue
            removed.append(segment)
    return removed


def read_journal(
    directory: str | Path, start_seq: int = 0
) -> Iterator[tuple[int, Event]]:
    """Replay journal records with ``seq >= start_seq``, in order.

    Tolerates a torn final record (partial line or failing CRC) in the
    *last* segment only; corruption anywhere else raises
    :class:`~repro.errors.JournalError`. Sequence gaps or regressions
    also raise — they mean a segment went missing.
    """
    segments = list_segments(directory)
    # Skip whole segments that end before start_seq: a segment can be
    # skipped when the *next* segment starts at or below start_seq.
    keep: list[Path] = []
    for index, segment in enumerate(segments):
        next_first = (
            _segment_first_seq(segments[index + 1])
            if index + 1 < len(segments)
            else None
        )
        if next_first is not None and next_first <= start_seq:
            continue
        keep.append(segment)
    expected = None
    for index, segment in enumerate(keep):
        is_last = index == len(keep) - 1
        with open(segment, "rb") as handle:
            for raw in handle:
                torn = not raw.endswith(b"\n")
                if not torn:
                    try:
                        seq, event = decode_record(raw.decode("utf-8"))
                    except (JournalError, UnicodeDecodeError):
                        torn = True
                if torn:
                    if is_last:
                        return  # tolerated torn tail
                    raise JournalError(
                        f"corrupt record in non-final segment "
                        f"{segment.name}"
                    )
                if expected is not None and seq != expected:
                    raise JournalError(
                        f"journal sequence jumped from {expected - 1} "
                        f"to {seq} in {segment.name}"
                    )
                expected = seq + 1
                if seq >= start_seq:
                    yield seq, event
