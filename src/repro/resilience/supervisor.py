"""Supervised stream engine: failure isolation one level above sinks.

PR 1 made a raising *sink* non-fatal; this module does the same for a
raising *executor*. A :class:`SupervisedStreamEngine` wraps the event
loop so that:

* every ingested event is appended to the journal (when attached)
  *before* any executor sees it — the WAL discipline recovery depends
  on;
* an executor that raises gets that event routed to a bounded
  :class:`DeadLetterQueue` (event + exception + registration name)
  while every other registration still receives it;
* after ``quarantine_after`` *consecutive* failures a registration is
  quarantined — skipped entirely — so a poison query cannot drag the
  loop's throughput down with per-event exception handling; healthy
  queries keep streaming;
* a quarantined registration can be restarted manually
  (:meth:`restart`), restored from the last engine checkpoint
  (:meth:`restart_from_checkpoint`), or automatically retried with
  doubling backoff (``auto_restart_events``);
* when the DLQ is full, the ``overload_policy`` decides:
  ``"shed_oldest"`` drops the oldest dead letter, ``"raise"`` raises
  :class:`~repro.errors.OverloadError`, and ``"block"`` invokes a
  user-supplied ``on_full`` drain hook (raising if the hook does not
  make room — in a synchronous loop there is nobody else to wait for);
* a journal durability backlog above ``max_journal_backlog_bytes``
  forces an fsync, bounding how much a power failure can lose
  regardless of the fsync policy.

All of it is observable: ``executor_failures_total`` (per query),
``dead_letters_total``, ``dlq_depth`` / ``dlq_shed_total``,
``quarantines_total`` and the ``quarantined_queries`` gauge.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.errors import EngineError, OverloadError
from repro.engine.engine import StreamEngine
from repro.engine.sinks import Output, ResultSink
from repro.events.event import Event
from repro.obs.logging import get_logger
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.obs.tracing import Stage, TraceRecorder
from repro.resilience.checkpointer import Checkpointer
from repro.resilience.journal import EventJournal

_log = get_logger("supervisor")

OVERLOAD_POLICIES = ("shed_oldest", "block", "raise")


@dataclass(frozen=True)
class DeadLetter:
    """One undeliverable payload: an event an executor failed on, or —
    when ``output`` is set — an aggregate no sink would accept after the
    engine's bounded retry (``sink_retries``) was exhausted."""

    query_name: str
    event: Event | None
    error: BaseException
    journal_seq: int = -1
    output: Any = None


class DeadLetterQueue:
    """Bounded FIFO of :class:`DeadLetter` records.

    ``policy`` governs what happens when a push finds the queue full —
    see the module docstring. ``on_full`` is only consulted under
    ``"block"``.
    """

    def __init__(
        self,
        capacity: int = 1024,
        policy: str = "shed_oldest",
        on_full: Callable[["DeadLetterQueue"], None] | None = None,
        registry: MetricsRegistry | None = None,
    ):
        if capacity <= 0:
            raise ValueError("DLQ capacity must be positive")
        if policy not in OVERLOAD_POLICIES:
            raise ValueError(
                f"policy must be one of {OVERLOAD_POLICIES}, got {policy!r}"
            )
        self.capacity = capacity
        self.policy = policy
        self._on_full = on_full
        self._letters: deque[DeadLetter] = deque()
        self.shed = 0
        registry = resolve_registry(registry)
        self._m_letters = registry.counter(
            "dead_letters_total", "events routed to the dead-letter queue"
        )
        self._m_shed = registry.counter(
            "dlq_shed_total", "dead letters dropped by the overload policy"
        )
        self._g_depth = registry.gauge(
            "dlq_depth", "dead letters currently queued"
        )

    def push(self, letter: DeadLetter) -> None:
        if len(self._letters) >= self.capacity:
            if self.policy == "shed_oldest":
                self._letters.popleft()
                self.shed += 1
                self._m_shed.inc()
            elif self.policy == "block":
                if self._on_full is not None:
                    self._on_full(self)
                if len(self._letters) >= self.capacity:
                    raise OverloadError(
                        f"dead-letter queue full ({self.capacity}) and "
                        f"the on_full hook did not drain it"
                    )
            else:  # raise
                raise OverloadError(
                    f"dead-letter queue full ({self.capacity})"
                )
        self._letters.append(letter)
        self._m_letters.inc()
        self._g_depth.set(len(self._letters))

    def drain(self) -> list[DeadLetter]:
        """Remove and return everything queued."""
        letters = list(self._letters)
        self._letters.clear()
        self._g_depth.set(0)
        return letters

    def peek(self) -> DeadLetter | None:
        return self._letters[0] if self._letters else None

    def __len__(self) -> int:
        return len(self._letters)

    def __iter__(self) -> Iterator[DeadLetter]:
        return iter(self._letters)


@dataclass
class _Health:
    """Per-registration failure-tracking state."""

    consecutive_failures: int = 0
    failures_total: int = 0
    quarantined: bool = False
    quarantined_at_event: int = 0
    retry_at_event: int | None = None
    backoff_events: int = 0
    m_failures: Any = field(default=None, repr=False)


class SupervisedStreamEngine(StreamEngine):
    """A :class:`StreamEngine` with durability and failure isolation.

    Drop-in: construct with the same arguments plus the resilience
    knobs, or attach a journal/checkpointer later via
    :meth:`attach_journal` / :meth:`attach_checkpointer` (recovery does
    exactly that, so replayed events are not re-journaled).
    """

    def __init__(
        self,
        vectorized: bool = False,
        registry: MetricsRegistry | None = None,
        trace: TraceRecorder | None = None,
        journal: EventJournal | None = None,
        checkpointer: Checkpointer | None = None,
        dlq: DeadLetterQueue | None = None,
        dlq_capacity: int = 1024,
        overload_policy: str = "shed_oldest",
        quarantine_after: int = 5,
        auto_restart_events: int | None = None,
        max_journal_backlog_bytes: int | None = None,
        stream_name: str = "default",
        cost_sample_every: int = 64,
        routed: bool = False,
        batch_size: int = 0,
        sink_retries: int = 0,
        sink_retry_backoff_s: float = 0.05,
    ):
        super().__init__(
            vectorized=vectorized,
            registry=registry,
            trace=trace,
            stream_name=stream_name,
            cost_sample_every=cost_sample_every,
            routed=routed,
            batch_size=batch_size,
            sink_retries=sink_retries,
            sink_retry_backoff_s=sink_retry_backoff_s,
        )
        if quarantine_after < 1:
            raise ValueError("quarantine_after must be at least 1")
        if auto_restart_events is not None and auto_restart_events < 1:
            raise ValueError("auto_restart_events must be at least 1")
        self._journal = journal
        self._checkpointer = checkpointer
        self.dlq = dlq if dlq is not None else DeadLetterQueue(
            capacity=dlq_capacity,
            policy=overload_policy,
            registry=self.obs_registry,
        )
        # Retried-and-still-failing sink deliveries land in the same
        # DLQ as executor failures (as DeadLetters carrying the output).
        if sink_retries > 0 and self.sink_dlq is None:
            self.sink_dlq = self.dlq
        self._quarantine_after = quarantine_after
        self._auto_restart_events = auto_restart_events
        self._max_backlog = max_journal_backlog_bytes
        self._health: dict[str, _Health] = {}
        # Hot-path cache: (registration, health) pairs so the event loop
        # does no per-event dict lookups. Rebuilt on (de)registration.
        self._dispatch: list[tuple[Any, _Health]] = []
        self._dispatch_routes: dict[str, list[tuple[Any, _Health]]] = {}
        self._dispatch_catch_all: list[tuple[Any, _Health]] = []
        self.events_replayed = 0
        obs = self.obs_registry
        self._g_quarantined = obs.gauge(
            "quarantined_queries", "registrations currently quarantined"
        )
        self._m_quarantines = obs.counter(
            "quarantines_total", "registrations put into quarantine"
        )

    # ----- wiring ----------------------------------------------------------

    def attach_journal(self, journal: EventJournal) -> None:
        self._journal = journal

    def attach_checkpointer(self, checkpointer: Checkpointer) -> None:
        self._checkpointer = checkpointer

    @property
    def journal(self) -> EventJournal | None:
        return self._journal

    @property
    def checkpointer(self) -> Checkpointer | None:
        return self._checkpointer

    def register_executor(
        self, name: str, executor: Any, *sinks: ResultSink
    ) -> None:
        super().register_executor(name, executor, *sinks)
        self._health[name] = _Health(
            m_failures=self.obs_registry.counter(
                "executor_failures_total",
                "executor process() calls that raised",
                query=name,
            )
        )
        self._rebuild_dispatch()

    def deregister(self, name: str) -> None:
        super().deregister(name)
        health = self._health.pop(name, None)
        if health is not None and health.quarantined:
            self._g_quarantined.dec()
        self._rebuild_dispatch()

    def _rebuild_dispatch(self) -> None:
        self._dispatch = [
            (registration, self._health[name])
            for name, registration in self._registrations.items()
        ]
        # Routed-mode mirrors of StreamEngine's index, carrying each
        # registration's health record alongside it.
        health = self._health
        self._dispatch_routes = {
            event_type: [(r, health[r.name]) for r in registrations]
            for event_type, registrations in self._routes.items()
        }
        self._dispatch_catch_all = [
            (r, health[r.name]) for r in self._catch_all
        ]

    # ----- event loop ------------------------------------------------------

    def process(self, event: Event) -> None:
        """Journal, then dispatch with per-registration isolation."""
        journal = self._journal
        journal_seq = -1
        if journal is not None:
            journal_seq = journal.append(event)
            if (
                self._max_backlog is not None
                and journal.backlog_bytes > self._max_backlog
            ):
                journal.sync()
            if self._trace_on:
                self._trace.record(
                    Stage.JOURNAL, event.ts, event.event_type,
                    f"seq={journal_seq}",
                )
        if self._routed:
            ts = event.ts
            if self._clock_ms is None or ts > self._clock_ms:
                self._clock_ms = ts
            targets = self._dispatch_routes.get(event.event_type)
            if targets is None:
                targets = self._dispatch_catch_all
        else:
            targets = self._dispatch
        obs_on = self._obs_on
        if obs_on:
            started = time.perf_counter()
            self._m_events.inc()
        self.metrics.events += 1
        events_seen = self.metrics.events
        sample = self._cost_sample_every
        timed = obs_on and sample and events_seen % sample == 0
        for registration, health in targets:
            if health.quarantined:
                if (
                    health.retry_at_event is not None
                    and events_seen >= health.retry_at_event
                ):
                    self._auto_restart(registration.name, health)
                else:
                    continue
            if obs_on:
                registration.m_events.inc()
            try:
                if timed:
                    t0 = time.perf_counter()
                    fresh = registration.executor.process(event)
                    registration.m_latency.observe(
                        (time.perf_counter() - t0) * 1e6
                    )
                else:
                    fresh = registration.executor.process(event)
            except Exception as error:
                self._note_failure(
                    registration.name, health, event, error, journal_seq
                )
                continue
            if health.consecutive_failures:
                health.consecutive_failures = 0
            if fresh is None:
                continue
            self.metrics.outputs += 1
            if obs_on:
                self._m_outputs.inc()
                registration.m_outputs.inc()
            if self._trace_on:
                self._trace.record(
                    Stage.EMIT, event.ts, event.event_type,
                    f"query={registration.name} value={fresh!r}",
                )
            if registration.sinks:
                self._deliver(
                    registration.name,
                    registration.sinks,
                    Output(registration.name, event.ts, fresh),
                    event=event,
                    journal_seq=journal_seq,
                )
        if obs_on:
            finished = time.perf_counter()
            self._m_latency.observe((finished - started) * 1e6)
            self._note_event_time(event.ts, finished)
        if self._checkpointer is not None:
            self._checkpointer.maybe_checkpoint()

    def process_batch(self, events) -> int:
        """Journal a micro-batch in one write (one fsync under
        ``fsync=interval``/``always``), then dispatch with the same
        per-event failure isolation as :meth:`process`.

        Executor dispatch stays per-event inside the batch — a raising
        executor must dead-letter exactly the poison event with its own
        journal sequence, which a whole-batch executor call could not
        attribute — so batching here buys the WAL write/fsync, the
        engine-level bookkeeping, and the checkpoint-schedule check, not
        the dispatch loop itself.
        """
        if not isinstance(events, list):
            events = list(events)
        if not events:
            return 0
        count = len(events)
        journal = self._journal
        first_seq = -1
        if journal is not None:
            first_seq = journal.append_batch(events)
            if (
                self._max_backlog is not None
                and journal.backlog_bytes > self._max_backlog
            ):
                journal.sync()
            if self._trace_on:
                self._trace.record(
                    Stage.JOURNAL, events[-1].ts, events[-1].event_type,
                    f"seq={first_seq}..{first_seq + count - 1}",
                )
        if first_seq >= 0:
            pairs = list(zip(events, range(first_seq, first_seq + count)))
        else:
            pairs = [(event, -1) for event in events]
        obs_on = self._obs_on
        if obs_on:
            started = time.perf_counter()
            self._m_events.inc(count)
        self.metrics.events += count
        events_seen = self.metrics.events
        last_ts = events[-1].ts
        if self._clock_ms is None or last_ts > self._clock_ms:
            self._clock_ms = last_ts
        routed = self._routed
        for registration, health in self._dispatch:
            if health.quarantined:
                if (
                    health.retry_at_event is not None
                    and events_seen >= health.retry_at_event
                ):
                    self._auto_restart(registration.name, health)
                else:
                    continue
            types = registration.types if routed else None
            if types is None:
                sub = pairs
            else:
                sub = [p for p in pairs if p[0].event_type in types]
                if not sub:
                    continue
            self._drive_supervised_batch(registration, health, sub, obs_on)
        if obs_on:
            finished = time.perf_counter()
            self._m_latency.observe((finished - started) * 1e6 / count)
            self._note_event_time(last_ts, finished)
        if self._checkpointer is not None:
            self._checkpointer.maybe_checkpoint(count)
        return count

    def _drive_supervised_batch(
        self,
        registration: Any,
        health: _Health,
        pairs: list[tuple[Event, int]],
        obs_on: bool,
    ) -> None:
        """One registration's slice of a batch, isolated per event."""
        offered = 0
        emitted: list[tuple[Event, Any]] = []
        for event, seq in pairs:
            if health.quarantined:
                break
            offered += 1
            try:
                fresh = registration.executor.process(event)
            except Exception as error:
                self._note_failure(
                    registration.name, health, event, error, seq
                )
                continue
            if health.consecutive_failures:
                health.consecutive_failures = 0
            if fresh is not None:
                emitted.append((event, fresh))
        if obs_on:
            registration.m_events.inc(offered)
        if not emitted:
            return
        self.metrics.outputs += len(emitted)
        if obs_on:
            self._m_outputs.inc(len(emitted))
            registration.m_outputs.inc(len(emitted))
        if self._trace_on:
            last_event, _ = emitted[-1]
            self._trace.record(
                Stage.EMIT, last_event.ts, last_event.event_type,
                f"query={registration.name} batch_outputs={len(emitted)}",
            )
        if registration.sinks:
            name = registration.name
            for event, fresh in emitted:
                self._deliver(
                    name,
                    registration.sinks,
                    Output(name, event.ts, fresh),
                    event=event,
                )

    # ----- failure handling ------------------------------------------------

    def _note_failure(
        self,
        name: str,
        health: _Health,
        event: Event,
        error: BaseException,
        journal_seq: int,
    ) -> None:
        health.consecutive_failures += 1
        health.failures_total += 1
        health.m_failures.inc()
        self.dlq.push(DeadLetter(name, event, error, journal_seq))
        if self._trace_on:
            self._trace.record(
                Stage.DEAD_LETTER, event.ts, event.event_type,
                f"query={name} error={type(error).__name__}",
            )
        if (
            not health.quarantined
            and health.consecutive_failures >= self._quarantine_after
        ):
            health.quarantined = True
            health.quarantined_at_event = self.metrics.events
            if self._auto_restart_events is not None:
                health.backoff_events = (
                    health.backoff_events * 2
                    if health.backoff_events
                    else self._auto_restart_events
                )
                health.retry_at_event = (
                    self.metrics.events + health.backoff_events
                )
            self._g_quarantined.inc()
            self._m_quarantines.inc()
            _log.warning(
                "quarantine",
                message=(
                    f"quarantined query {name!r} after "
                    f"{health.consecutive_failures} consecutive failures"
                ),
                query=name,
                consecutive_failures=health.consecutive_failures,
                error=type(error).__name__,
                retry_at_event=health.retry_at_event,
            )
            if self._trace_on:
                self._trace.record(
                    Stage.QUARANTINE, event.ts, event.event_type,
                    f"query={name} after "
                    f"{health.consecutive_failures} failures",
                )

    def _auto_restart(self, name: str, health: _Health) -> None:
        """Backoff expired: give the registration another chance."""
        try:
            self.restart_from_checkpoint(name)
        except EngineError:
            self.restart(name)

    # ----- quarantine management -------------------------------------------

    def quarantined(self) -> list[str]:
        """Names of the registrations currently quarantined."""
        return [
            name
            for name, health in self._health.items()
            if health.quarantined
        ]

    def health_of(self, name: str) -> dict[str, Any]:
        """Failure-tracking snapshot for one registration."""
        health = self._health.get(name)
        if health is None:
            raise EngineError(f"unknown query {name!r}")
        return {
            "quarantined": health.quarantined,
            "consecutive_failures": health.consecutive_failures,
            "failures_total": health.failures_total,
            "retry_at_event": health.retry_at_event,
        }

    def restart(self, name: str) -> None:
        """Lift quarantine, keeping the executor's current state."""
        health = self._health.get(name)
        if health is None:
            raise EngineError(f"unknown query {name!r}")
        if health.quarantined:
            health.quarantined = False
            self._g_quarantined.dec()
            _log.info(
                "restart",
                message=f"restarted quarantined query {name!r}",
                query=name,
                failures_total=health.failures_total,
            )
        health.consecutive_failures = 0
        health.retry_at_event = None

    def restart_from_checkpoint(self, name: str) -> None:
        """Lift quarantine and restore the executor from the newest
        engine checkpoint (its state as of that checkpoint; events since
        are lost to this registration unless the caller replays them).
        """
        from repro.core.checkpoint import restore as executor_restore
        from repro.errors import CheckpointError
        from repro.resilience.checkpointer import load_latest_checkpoint

        if self._checkpointer is None:
            raise EngineError(
                "no checkpointer attached; use restart() instead"
            )
        registration = self._registrations.get(name)
        if registration is None:
            raise EngineError(f"unknown query {name!r}")
        state, _ = load_latest_checkpoint(self._checkpointer.directory)
        if state is None:
            raise CheckpointError("no loadable engine checkpoint found")
        entry = next(
            (
                item
                for item in state["registrations"]
                if item["name"] == name
            ),
            None,
        )
        if entry is None:
            raise CheckpointError(
                f"checkpoint holds no registration named {name!r}"
            )
        registration.executor = executor_restore(
            registration.executor.query,
            entry["state"],
            vectorized=bool(entry.get("vectorized", False)),
        )
        self.restart(name)

    # ----- introspection ----------------------------------------------------

    def inspect(self) -> dict[str, Any]:
        """Engine summary plus supervision state (health, DLQ, journal)."""
        state = super().inspect()
        health = {}
        for name, entry in list(self._health.items()):
            health[name] = {
                "quarantined": entry.quarantined,
                "consecutive_failures": entry.consecutive_failures,
                "failures_total": entry.failures_total,
                "retry_at_event": entry.retry_at_event,
            }
        journal = self._journal
        state.update(
            health=health,
            quarantined=self.quarantined(),
            dlq_depth=len(self.dlq),
            dlq_shed=self.dlq.shed,
            journal_backlog_bytes=(
                int(journal.backlog_bytes) if journal is not None else 0
            ),
            events_replayed=self.events_replayed,
        )
        return state
