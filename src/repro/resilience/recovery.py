"""Crash recovery: latest valid checkpoint + journal-suffix replay.

The recovery contract this module proves (and the resilience test
suite checks differentially): for any crash point *i*,

    ``recover(dir)`` then feeding events ``i..n``  ==  an uninterrupted
    run over events ``0..n``

for every checkpointable query shape (DPC, SEM, HPC/GROUP BY,
negation, value aggregates). The pieces:

1. load the newest checkpoint that parses and validates — corrupt or
   torn generations are skipped, older generations are fallback
   (:func:`repro.resilience.checkpointer.load_latest_checkpoint`);
   with no loadable checkpoint at all, recovery degrades to a full
   journal replay from offset 0 (queries must then be re-supplied);
2. rebuild the :class:`SupervisedStreamEngine`: each registration's
   query text is re-parsed and its executor state restored through the
   per-runtime serializers of :mod:`repro.core.checkpoint`;
3. replay the journal suffix (``seq >= checkpoint.journal_seq``)
   through the restored engine — the journal reader tolerates a torn
   final record, so a crash mid-append loses at most the event whose
   dispatch never completed;
4. re-attach the journal (which resumes appending after the last valid
   record) and a fresh checkpointer, so the recovered engine is
   immediately crash-safe again.

Sinks are process-local objects and cannot be serialized; pass
``sinks={"query_name": [sink, ...]}`` to re-attach them. Replayed
events do *not* re-emit to sinks by default (``replay_to_sinks=False``)
— the outputs were already delivered before the crash.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Sequence

from repro.core.checkpoint import restore as executor_restore
from repro.errors import CheckpointError
from repro.engine.sinks import ResultSink
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.obs.tracing import Stage, TraceRecorder, resolve_tracer
from repro.query.ast import Query
from repro.query.parser import parse_query
from repro.resilience.checkpointer import Checkpointer, load_latest_checkpoint
from repro.resilience.journal import EventJournal, read_journal
from repro.resilience.supervisor import SupervisedStreamEngine


def recover(
    directory: str | Path,
    sinks: Mapping[str, Sequence[ResultSink]] | None = None,
    queries: Sequence[Query] | None = None,
    registry: MetricsRegistry | None = None,
    trace: TraceRecorder | None = None,
    reattach_journal: bool = True,
    checkpoint_every_events: int | None = None,
    checkpoint_every_ms: float | None = None,
    replay_to_sinks: bool = False,
    fsync: str = "never",
    **supervisor_kwargs,
) -> SupervisedStreamEngine:
    """Rebuild a supervised engine from ``directory`` after a crash.

    ``directory`` is the runtime directory holding both the journal
    segments and the checkpoint generations (what the CLI's
    ``--journal DIR`` writes). ``queries`` is only needed when no
    checkpoint survives at all (fresh replay from offset 0); otherwise
    the checkpoint's own query texts are authoritative.
    """
    directory = Path(directory)
    registry = resolve_registry(registry)
    tracer = resolve_tracer(trace)
    m_recoveries = registry.counter(
        "recoveries_total", "successful engine recoveries"
    )
    m_replayed = registry.counter(
        "events_replayed_total", "journal events replayed during recovery"
    )

    state, state_path = load_latest_checkpoint(directory)
    engine = SupervisedStreamEngine(
        registry=registry, trace=tracer, **supervisor_kwargs
    )
    sinks = sinks or {}

    start_seq = 0
    if state is not None:
        start_seq = state["journal_seq"]
        metrics = state.get("metrics", {})
        engine.metrics.events = metrics.get("events", 0)
        engine.metrics.outputs = metrics.get("outputs", 0)
        engine.metrics.elapsed_s = metrics.get("elapsed_s", 0.0)
        engine.metrics.peak_objects = metrics.get("peak_objects", 0)
        engine.metrics.sink_errors = metrics.get("sink_errors", 0)
        for entry in state["registrations"]:
            name = entry["name"]
            query = parse_query(entry["state"]["query"], name=name)
            executor = executor_restore(
                query,
                entry["state"],
                vectorized=bool(entry.get("vectorized", False)),
            )
            engine.register_executor(name, executor, *sinks.get(name, ()))
    elif queries is not None:
        for index, query in enumerate(queries):
            name = query.name or f"q{index}"
            engine.register(query, *sinks.get(name, ()), name=name)
    else:
        raise CheckpointError(
            f"no loadable checkpoint under {directory} and no queries "
            f"supplied for a from-scratch replay"
        )

    if tracer.enabled:
        tracer.record(
            Stage.RECOVER, 0, "-",
            f"checkpoint={state_path.name if state_path else 'none'} "
            f"replay_from={start_seq}",
        )

    # Replay the journal suffix. Sinks are detached during replay
    # unless asked for, so pre-crash outputs are not delivered twice.
    detached: dict[str, list] = {}
    if not replay_to_sinks:
        for name in engine.query_names:
            registration = engine._registrations[name]
            detached[name] = registration.sinks
            registration.sinks = []
    replayed = 0
    try:
        for _, event in read_journal(directory, start_seq=start_seq):
            engine.process(event)
            replayed += 1
    finally:
        for name, saved in detached.items():
            engine._registrations[name].sinks = saved
    m_replayed.inc(replayed)
    engine.events_replayed = replayed

    if reattach_journal:
        journal = EventJournal(directory, fsync=fsync, registry=registry)
        engine.attach_journal(journal)
        if checkpoint_every_events or checkpoint_every_ms:
            engine.attach_checkpointer(
                Checkpointer(
                    directory,
                    engine,
                    journal=journal,
                    every_events=checkpoint_every_events,
                    every_ms=checkpoint_every_ms,
                    registry=registry,
                )
            )
    m_recoveries.inc()
    return engine
