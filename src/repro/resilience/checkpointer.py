"""Engine-wide checkpoints: the whole StreamEngine as one document.

:mod:`repro.core.checkpoint` serializes a *single* executor — the
near-free trick the paper's counter-only state makes possible. This
module lifts that to the whole :class:`~repro.engine.engine.StreamEngine`:
every registration (query text, vectorized flag, executor state via the
per-runtime serializers), the running :class:`EngineMetrics`, and the
journal offset the checkpoint is consistent with. Recovery loads the
document and replays the journal suffix from that offset
(:mod:`repro.resilience.recovery`).

Checkpoint files are written atomically — serialized to
``<name>.tmp`` in the same directory, flushed, fsynced, then
``os.replace``d into place — so a crash mid-write can never leave a
half-written file under the real name. Files are named by a
monotonically increasing generation number
(``checkpoint-000000000042.json``), newest-wins; a bounded number of
older generations is retained as fallback against corruption of the
newest. The journal offset the checkpoint is consistent with lives
*inside* the document (``journal_seq``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any

from repro.core.checkpoint import checkpoint as executor_checkpoint
from repro.errors import CheckpointError
from repro.obs.registry import MetricsRegistry, resolve_registry

ENGINE_FORMAT_VERSION = 1
CHECKPOINT_PREFIX = "checkpoint-"
CHECKPOINT_SUFFIX = ".json"


def _checkpoint_name(generation: int) -> str:
    return f"{CHECKPOINT_PREFIX}{generation:012d}{CHECKPOINT_SUFFIX}"


def _next_generation(directory: Path) -> int:
    existing = list_checkpoints(directory)
    if not existing:
        return 0
    stem = existing[-1].name[
        len(CHECKPOINT_PREFIX):-len(CHECKPOINT_SUFFIX)
    ]
    try:
        return int(stem) + 1
    except ValueError:
        return len(existing)


def list_checkpoints(directory: str | Path) -> list[Path]:
    """Checkpoint files in ``directory``, oldest first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = [
        path
        for path in directory.iterdir()
        if path.name.startswith(CHECKPOINT_PREFIX)
        and path.name.endswith(CHECKPOINT_SUFFIX)
    ]
    return sorted(found)


def engine_state(engine: Any, journal_seq: int = 0) -> dict[str, Any]:
    """Serialize a whole StreamEngine to a JSON-able document.

    Every registered executor must be checkpointable by
    :func:`repro.core.checkpoint.checkpoint` (i.e. an ASeqEngine over
    the DPC/SEM/vectorized/HPC runtimes); anything else raises
    :class:`~repro.errors.CheckpointError`.
    """
    registrations = []
    for name in engine.query_names:
        executor = engine._registrations[name].executor
        if not hasattr(executor, "runtime") or not hasattr(executor, "query"):
            raise CheckpointError(
                f"registration {name!r} holds a "
                f"{type(executor).__name__}, which is not an "
                f"engine-checkpointable executor"
            )
        registrations.append(
            {
                "name": name,
                "vectorized": bool(getattr(executor, "_vectorized", False)),
                "state": executor_checkpoint(executor),
            }
        )
    metrics = engine.metrics
    return {
        "version": ENGINE_FORMAT_VERSION,
        "journal_seq": journal_seq,
        "metrics": {
            "events": metrics.events,
            "outputs": metrics.outputs,
            "elapsed_s": metrics.elapsed_s,
            "peak_objects": metrics.peak_objects,
            "sink_errors": metrics.sink_errors,
        },
        "registrations": registrations,
    }


def validate_engine_state(state: Any) -> dict[str, Any]:
    """Structural check of a loaded checkpoint document."""
    if not isinstance(state, dict):
        raise CheckpointError("engine checkpoint is not a JSON object")
    if state.get("version") != ENGINE_FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported engine checkpoint version "
            f"{state.get('version')!r}"
        )
    if not isinstance(state.get("journal_seq"), int):
        raise CheckpointError("engine checkpoint is missing journal_seq")
    registrations = state.get("registrations")
    if not isinstance(registrations, list):
        raise CheckpointError("engine checkpoint is missing registrations")
    for entry in registrations:
        if (
            not isinstance(entry, dict)
            or not isinstance(entry.get("name"), str)
            or not isinstance(entry.get("state"), dict)
        ):
            raise CheckpointError(
                "engine checkpoint holds a malformed registration entry"
            )
    return state


def write_checkpoint(
    directory: str | Path,
    state: dict[str, Any],
    generation: int | None = None,
) -> Path:
    """Atomically persist one engine checkpoint; returns its path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if generation is None:
        generation = _next_generation(directory)
    final = directory / _checkpoint_name(generation)
    tmp = final.with_suffix(final.suffix + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(state, handle, separators=(",", ":"))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, final)
    return final


def load_checkpoint(path: str | Path) -> dict[str, Any]:
    """Load and structurally validate one checkpoint file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            state = json.load(handle)
    except (OSError, ValueError) as error:
        raise CheckpointError(
            f"cannot read checkpoint {Path(path).name}: {error}"
        ) from error
    return validate_engine_state(state)


def load_latest_checkpoint(
    directory: str | Path,
) -> tuple[dict[str, Any], Path] | tuple[None, None]:
    """Newest checkpoint that loads and validates, else ``(None, None)``.

    Corrupt or torn newer generations are skipped (renamed with a
    ``.corrupt`` suffix is deliberately *not* done — they stay in place
    for forensics; retention pruning removes them eventually).
    """
    for path in reversed(list_checkpoints(directory)):
        try:
            return load_checkpoint(path), path
        except CheckpointError:
            continue
    return None, None


class Checkpointer:
    """Scheduled, atomic engine checkpointing.

    ``maybe_checkpoint()`` is called once per processed event by the
    supervised engine; it writes when either trigger fires:

    * ``every_events`` — N events processed since the last write;
    * ``every_ms`` — T wall-clock milliseconds elapsed since the last
      write (checked lazily, on event arrival).

    ``checkpoint_now()`` forces a write (shutdown, tests).
    """

    def __init__(
        self,
        directory: str | Path,
        engine: Any,
        journal: Any = None,
        every_events: int | None = None,
        every_ms: float | None = None,
        retain: int = 3,
        registry: MetricsRegistry | None = None,
    ):
        if every_events is not None and every_events <= 0:
            raise ValueError("every_events must be positive")
        if every_ms is not None and every_ms <= 0:
            raise ValueError("every_ms must be positive")
        if retain < 1:
            raise ValueError("retain must be at least 1")
        self.directory = Path(directory)
        self._engine = engine
        self._journal = journal
        self._every_events = every_events
        self._every_ms = every_ms
        self._retain = retain
        self._since_write = 0
        self._last_write_at = time.monotonic()
        registry = resolve_registry(registry)
        self._m_written = registry.counter(
            "checkpoints_written_total", "engine checkpoints persisted"
        )
        self._m_duration = registry.histogram(
            "checkpoint_duration_us",
            "wall time to serialize+fsync one engine checkpoint (µs)",
        )
        self.last_path: Path | None = None

    def maybe_checkpoint(self, events: int = 1) -> Path | None:
        """Write a checkpoint if a schedule trigger fired.

        ``events`` credits more than one processed event at once (the
        batched ingestion path calls this once per micro-batch).
        """
        self._since_write += events
        due = (
            self._every_events is not None
            and self._since_write >= self._every_events
        )
        if not due and self._every_ms is not None:
            due = (
                time.monotonic() - self._last_write_at
            ) * 1e3 >= self._every_ms
        if not due:
            return None
        return self.checkpoint_now()

    def checkpoint_now(self) -> Path:
        """Serialize the engine and write one generation atomically."""
        started = time.perf_counter()
        journal_seq = (
            self._journal.next_seq if self._journal is not None else 0
        )
        # The journal must be durable up to the offset the checkpoint
        # claims, or replay-from-checkpoint could miss events.
        if self._journal is not None:
            self._journal.sync()
        state = engine_state(self._engine, journal_seq=journal_seq)
        path = write_checkpoint(self.directory, state)
        self._since_write = 0
        self._last_write_at = time.monotonic()
        self.last_path = path
        self._m_written.inc()
        self._m_duration.observe((time.perf_counter() - started) * 1e6)
        self._prune()
        return path

    def _prune(self) -> None:
        existing = list_checkpoints(self.directory)
        for stale in existing[: -self._retain]:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - racing cleanup is fine
                pass
