"""Router durability: ingest-lane WAL + exact router recovery.

The sharded engine's last single point of failure was the router
process itself: per-shard journals could rebuild any *worker*, but a
SIGKILL'd router lost its local lane, its merge bookkeeping, and every
in-flight batch. This module closes that hole with the same recipe
the per-shard path uses — write-ahead journal plus periodic
checkpoint — applied one level up:

* :class:`RouterLog` — N independent **ingest lanes**, each an
  :class:`~repro.resilience.journal.EventJournal` under
  ``<dir>/lane-NN``. ``append`` is an in-memory push (cheap enough to
  ride the ingest hot path); :meth:`RouterLog.commit` **group-commits**
  everything pending — one batch record per lane, then one commit
  marker in the ``commits`` journal. The marker is the atomic commit
  point: a SIGKILL mid-commit leaves unmarked lane chunks that replay
  provably skips, because the engine commits *before every batch
  send*, so an unmarked record can never have reached a shard;
* :func:`recover_router` — rebuilds a
  :class:`~repro.engine.sharded.ShardedStreamEngine` after a router
  crash: load the router checkpoint, re-register its query texts,
  restart workers seeded from *their own* checkpoints + journals,
  then replay the lane suffix through the router with per-shard
  **count-skip** — routing is deterministic, so the k-th replayed
  record bound for shard *i* is skipped iff k is below that shard's
  recovered journal tail (the worker already holds it).

Why this is exact (under the ``"block"`` overload policy):

1. the engine calls :meth:`RouterLog.commit` before any batch leaves
   for a shard, and a shard-journal append happens only after a
   successful send — so every shard journal is a strict by-count
   prefix-subset of the marked lane WAL;
2. journals are unbuffered (one ``write()`` per commit group), so a
   SIGKILL loses at most the *final commit group* — records that were
   never sent anywhere. ``flush()`` commits, so it is the durability
   ack: after recovery the source resumes from the recovered engine's
   ``metrics.events``, which can only trail the crash point by records
   ingested after the last flush/send;
3. the router checkpoint flushes all worker buffers first, so its
   per-shard delivered watermarks are honest, and its cadence check
   runs before the next append, so it never covers a half-routed
   event.

``shed_oldest`` deliberately drops records, so replay after recovery
may re-deliver what the crashed run shed (or vice versa) — recovery is
then best-effort, exactly as the live path is.
"""

from __future__ import annotations

import heapq
import threading
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

from repro.errors import CheckpointError, JournalError
from repro.events.event import Event
from repro.obs.logging import get_logger
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.resilience.checkpointer import (
    load_latest_checkpoint,
    write_checkpoint,
)
from repro.resilience.journal import (
    EventJournal,
    prune_segments,
    read_journal,
)

_log = get_logger("router_recovery")

#: Event type of a lane-journal record: one commit group's worth of
#: records for that lane — a batch of ``[event_type, ts, attrs, gseq]``
#: entries under the ``"b"`` attribute, ascending by global sequence.
WAL_BATCH_TYPE = "__wal__"

#: Event type of a commit-marker record: ``{"s": first_gseq,
#: "e": next_gseq, "l": {lane: chunk_journal_seq}}``. A lane chunk is
#: part of the durable WAL iff a marker references it.
WAL_COMMIT_TYPE = "__commit__"

_LANE_PREFIX = "lane-"
_COMMITS_DIR = "commits"


def _lane_dir(directory: Path, lane: int) -> Path:
    return directory / f"{_LANE_PREFIX}{lane:02d}"


def discover_lanes(directory: str | Path) -> int:
    """How many ingest lanes a router WAL directory holds (0 if none)."""
    directory = Path(directory)
    if not directory.is_dir():
        return 0
    count = 0
    while _lane_dir(directory, count).is_dir():
        count += 1
    return count


class RouterLog:
    """The router's write-ahead log: partitioned ingest lanes.

    ``lanes=1`` is a single global journal; more lanes spread the
    writes across independent journals (each owning a key range via
    the same hash that picks shards) while the explicit per-record
    ingest sequence keeps total order recoverable. The log resumes its
    global sequence from the last commit marker, so re-opening after a
    crash continues the same numbering.

    ``append`` only stages records in memory; ``commit`` — called by
    the engine ahead of every batch send, and by ``sync``/``close`` —
    writes one batch record per lane plus one commit marker. Group
    commit keeps the WAL off the ingest critical path, and it is safe
    because a record cannot be *delivered* before the commit that
    covers it returns.

    ``shard_attribute`` picks the lane key; the engine late-binds it
    at start when left ``None`` (it is derived from the registered
    queries' GROUP BY). With no attribute the event type is the key.
    """

    def __init__(
        self,
        directory: str | Path,
        lanes: int = 1,
        shard_attribute: str | None = None,
        fsync: str = "never",
        segment_bytes: int = 4 * 1024 * 1024,
        registry: MetricsRegistry | None = None,
    ):
        if lanes < 1:
            raise ValueError("lanes must be >= 1")
        # Local import: repro.engine.sharded imports this package's
        # siblings at module load; importing it back at *call* time
        # keeps the package initialization acyclic.
        from repro.engine.sharded import shard_of

        self._shard_of = shard_of
        self.directory = Path(directory)
        self.lanes = lanes
        self.shard_attribute = shard_attribute
        registry = resolve_registry(registry)
        self._journals = [
            EventJournal(
                _lane_dir(self.directory, lane),
                fsync=fsync,
                segment_bytes=segment_bytes,
                registry=registry,
            )
            for lane in range(lanes)
        ]
        self._commits = EventJournal(
            self.directory / _COMMITS_DIR,
            fsync=fsync,
            segment_bytes=segment_bytes,
            registry=registry,
        )
        self._m_appends = registry.counter(
            "router_wal_appends_total",
            "events committed to the router's ingest-lane WAL",
        )
        self._g_positions = [
            registry.gauge(
                "ingest_lane_position",
                "next per-lane journal sequence of this ingest lane",
                lane=str(lane),
            )
            for lane in range(lanes)
        ]
        #: Serializes ``append`` vs ``commit`` (the scrape thread may
        #: flush — and therefore commit — concurrently with ingest).
        self._lock = threading.Lock()
        #: Staged-but-uncommitted records, already partitioned by lane
        #: (``append`` does the partitioning so ``commit`` is one
        #: journal write per non-empty lane, no per-record work).
        self._pending: list[list[list]] = [[] for _ in range(lanes)]
        self._pending_count = 0
        self._pending_ts = 0
        #: Key → lane memo (bounded; keys repeat heavily on real
        #: streams, and hashing the key is the hot cost of staging).
        self._lane_cache: dict[Any, int] = {}
        self._ingest_seq = self._resume_ingest_seq()

    def _resume_ingest_seq(self) -> int:
        """Next global sequence = the last commit marker's end."""
        for lane, journal in enumerate(self._journals):
            self._g_positions[lane].set(float(journal.next_seq))
        if self._commits.next_seq == 0:
            if any(journal.next_seq for journal in self._journals):
                raise JournalError(
                    f"{self.directory} holds lane records but no "
                    f"commit markers; not a recoverable router WAL"
                )
            return 0
        ingest = 0
        for _, marker in read_journal(
            self.directory / _COMMITS_DIR,
            start_seq=self._commits.next_seq - 1,
        ):
            attrs = marker.attrs or {}
            if marker.event_type != WAL_COMMIT_TYPE or "e" not in attrs:
                raise JournalError(
                    f"malformed commit marker in {self.directory}; "
                    f"not a router WAL"
                )
            ingest = max(ingest, int(attrs["e"]))
        return ingest

    @property
    def ingest_seq(self) -> int:
        """The next global ingest sequence (== events ever appended,
        committed or still pending)."""
        return self._ingest_seq

    @property
    def commit_seq(self) -> int:
        """The commit-marker journal position (for checkpoints)."""
        return self._commits.next_seq

    def lane_of(self, event_type: str, attrs: dict | None) -> int:
        key: Any = None
        if self.shard_attribute is not None and attrs is not None:
            key = attrs.get(self.shard_attribute)
        if key is None:
            key = event_type
        cache = self._lane_cache
        try:
            lane = cache.get(key)
        except TypeError:  # unhashable key: hash its repr directly
            return self._shard_of(key, self.lanes)
        if lane is None:
            lane = self._shard_of(key, self.lanes)
            if len(cache) < 8192:  # unbounded keys must not leak
                cache[key] = lane
        return lane

    def append(self, event: Event) -> int:
        """Stage one event for the WAL; returns its global ingest
        sequence. Durable only after the next :meth:`commit`.

        This is the per-event hot path (everything else is per commit
        group), so the lane lookup is inlined against the memo rather
        than calling :meth:`lane_of`.
        """
        event_type = event.event_type
        attrs = event.attrs or None
        ts = event.ts
        key = attrs.get(self.shard_attribute) if (
            self.shard_attribute is not None and attrs is not None
        ) else None
        if key is None:
            key = event_type
        try:
            lane = self._lane_cache.get(key)
        except TypeError:  # unhashable key: hash its repr directly
            lane = self._shard_of(key, self.lanes)
        if lane is None:
            lane = self.lane_of(event_type, attrs)
        with self._lock:
            gseq = self._ingest_seq
            self._ingest_seq = gseq + 1
            self._pending[lane].append([event_type, ts, attrs, gseq])
            self._pending_count += 1
            self._pending_ts = ts
        return gseq

    def commit(self) -> None:
        """Write every pending record — one batch record per lane,
        sealed by one commit marker.

        The engine calls this ahead of every batch send (under the
        worker's buffer lock), so anything a shard ever received is
        covered by a marker that predates the send; lane chunks with
        no marker are torn tails and are skipped at replay.
        """
        with self._lock:
            count = self._pending_count
            if not count:
                return
            base = self._ingest_seq - count
            marked: dict[str, int] = {}
            for lane, chunk in enumerate(self._pending):
                if not chunk:
                    continue
                journal = self._journals[lane]
                marked[str(lane)] = journal.append(
                    Event(WAL_BATCH_TYPE, chunk[-1][1], {"b": chunk})
                )
                self._g_positions[lane].set(float(journal.next_seq))
                self._pending[lane] = []
            self._pending_count = 0
            self._commits.append(
                Event(
                    WAL_COMMIT_TYPE,
                    self._pending_ts,
                    {
                        "s": base,
                        "e": base + count,
                        "l": marked,
                    },
                )
            )
            self._m_appends.inc(count)

    def lane_seqs(self) -> list[int]:
        """Per-lane journal positions (the checkpoint's replay starts)."""
        return [journal.next_seq for journal in self._journals]

    def sync(self) -> None:
        self.commit()
        for journal in self._journals:
            journal.sync()
        self._commits.sync()

    def checkpoint(self, state: dict[str, Any]) -> None:
        """Persist a router progress document and prune covered lanes.

        The caller (the engine's ``router_checkpoint``) builds the
        state *from this log's current positions* with no appends in
        between, so every segment fully below the current tails is
        covered by the checkpoint and safe to drop.
        """
        self.sync()
        write_checkpoint(self.directory, state)
        for lane, journal in enumerate(self._journals):
            prune_segments(_lane_dir(self.directory, lane), journal.next_seq)
        prune_segments(
            self.directory / _COMMITS_DIR, self._commits.next_seq
        )

    def replay(
        self,
        lane_starts: Sequence[int] | None = None,
        commit_start: int = 0,
    ) -> Iterator[tuple[int, Event]]:
        """Merge the marked lane suffixes back into global ingest order.

        Yields ``(gseq, event)`` with events bit-identical to what was
        originally ingested. The commit markers say exactly which lane
        records are part of the durable WAL — an unmarked chunk is the
        torn tail of a mid-commit SIGKILL, and its records were
        provably never delivered (sends only happen after the marker
        hits disk), so it is skipped. Over the marked records each
        lane is ascending in gseq, so a k-way heap merge restores
        total order; any gap in the merged sequence means a lane lost
        marked history and raises
        :class:`~repro.errors.JournalError`.
        """
        starts = (
            list(lane_starts)
            if lane_starts is not None
            else [0] * self.lanes
        )
        if len(starts) != self.lanes:
            raise CheckpointError(
                f"checkpoint records {len(starts)} lane positions but "
                f"the WAL has {self.lanes} lanes"
            )
        self.commit()
        for journal in self._journals:
            journal.flush()
        self._commits.flush()

        marked: dict[int, set[int]] = {
            lane: set() for lane in range(self.lanes)
        }
        for _, marker in read_journal(
            self.directory / _COMMITS_DIR, start_seq=commit_start
        ):
            if marker.event_type != WAL_COMMIT_TYPE:
                raise JournalError(
                    f"unexpected record type {marker.event_type!r} in "
                    f"the commit-marker journal of {self.directory}"
                )
            for lane_key, seq in (marker.attrs or {}).get("l", {}).items():
                lane = int(lane_key)
                if lane < self.lanes:
                    marked[lane].add(int(seq))

        def lane_iter(lane: int) -> Iterator[tuple[int, Event]]:
            committed = marked[lane]
            for seq, record in read_journal(
                _lane_dir(self.directory, lane), start_seq=starts[lane]
            ):
                if seq not in committed:
                    continue  # torn mid-commit; never delivered
                batch = (record.attrs or {}).get("b")
                if record.event_type != WAL_BATCH_TYPE or batch is None:
                    raise JournalError(
                        f"lane {lane} record seq={seq} is not a WAL "
                        f"commit group"
                    )
                for event_type, ts, attrs, gseq in batch:
                    yield int(gseq), Event(event_type, ts, attrs or None)

        expected: int | None = None
        merged = heapq.merge(
            *(lane_iter(lane) for lane in range(self.lanes)),
            key=lambda entry: entry[0],
        )
        for gseq, event in merged:
            if expected is not None and gseq != expected:
                raise JournalError(
                    f"router WAL gap: expected ingest seq {expected}, "
                    f"found {gseq}; a lane lost committed history"
                )
            expected = gseq + 1
            yield gseq, event

    def close(self) -> None:
        self.commit()
        for journal in self._journals:
            journal.close()
        self._commits.close()


def recover_router(
    directory: str | Path,
    queries: Sequence[Any] | None = None,
    sinks: Mapping[str, Sequence[Any]] | None = None,
    registry: MetricsRegistry | None = None,
    lanes: int | None = None,
    fsync: str = "never",
    reattach_log: bool = True,
    journal_dir: str | Path | None = None,
    **engine_kwargs: Any,
):
    """Rebuild a sharded engine after a router crash; returns the
    recovered :class:`~repro.engine.sharded.ShardedStreamEngine`,
    mid-stream, ready for the next ``process()`` call.

    ``directory`` is the router WAL directory (lane journals + router
    checkpoints — what ``attach_router_log`` wrote). ``journal_dir``
    is the per-shard journal directory of the crashed engine; it
    defaults to ``<directory>/shards``, the CLI's layout. ``queries``
    is only needed when no router checkpoint survives (from-scratch
    replay); otherwise the checkpoint's query texts are authoritative
    and must re-derive the same sharding plan. Extra keyword arguments
    pass through to the engine constructor (transport, overload
    policy, heartbeat cadence, ``router_checkpoint_every``, ...).

    The recovered engine's ``metrics.events`` is the resume position:
    the source should continue from that offset. It can trail the
    crashed router's ingest count by at most one commit group (records
    staged after the last flush/send), and those records were never
    delivered to any shard or sink.

    Recovery outline (the inverse of ``router_checkpoint``):

    1. workers restart seeded from their own checkpoints + journals
       (``resume_shards=True``); a shard that had degraded into the
       fold lane is resurrected as a live worker from the fold state
       embedded in the router checkpoint;
    2. the local lane restores from the checkpoint document exactly
       like single-process recovery (executors + metrics);
    3. the lane WAL suffix replays through the router with per-shard
       count-skip, so workers receive only the records their journals
       do not already hold — anything redelivered anyway (conservative
       overlap) is dropped by the worker's own dedup cursor.
    """
    from repro.engine.sharded import ShardedStreamEngine, _apply_seed

    directory = Path(directory)
    registry = resolve_registry(registry)
    m_recoveries = registry.counter(
        "router_recoveries_total", "successful router recoveries"
    )
    m_replayed = registry.counter(
        "router_replayed_events_total",
        "lane WAL events replayed during router recovery",
    )

    state, state_path = load_latest_checkpoint(directory)
    router: dict[str, Any] | None = None
    if state is not None:
        router = state.get("router")
        if not isinstance(router, dict):
            raise CheckpointError(
                f"{state_path} is not a router checkpoint (no 'router' "
                f"section); point recover() at it instead"
            )

    shards = engine_kwargs.pop(
        "shards", router["shards"] if router else None
    )
    if shards is None:
        raise CheckpointError(
            f"no loadable router checkpoint under {directory}; pass "
            f"shards= (and queries=) for a from-scratch replay"
        )
    batch_size = engine_kwargs.pop(
        "batch_size", router["batch_size"] if router else 256
    )
    shards_dir = Path(journal_dir) if journal_dir else directory / "shards"
    engine = ShardedStreamEngine(
        shards=shards,
        batch_size=batch_size,
        journal_dir=shards_dir,
        resume_shards=True,
        registry=registry,
        **engine_kwargs,
    )

    sinks = sinks or {}
    if router is not None:
        from repro.query.parser import parse_query

        recorded = [
            (name, text, bool(sharded))
            for name, text, sharded in router["queries"]
        ]
        for name, text, _ in recorded:
            query = parse_query(text, name=name)
            engine.register(query, *sinks.get(name, ()), name=name)
        for name, _, was_sharded in recorded:
            if (name in engine._sharded) != was_sharded:
                raise CheckpointError(
                    f"query {name!r} re-derived a different sharding "
                    f"plan than the checkpoint records; the "
                    f"registration set must match the crashed run"
                )
    elif queries is not None:
        for index, query in enumerate(queries):
            name = getattr(query, "name", None) or f"q{index}"
            engine.register(query, *sinks.get(name, ()), name=name)
    else:
        raise CheckpointError(
            f"no loadable router checkpoint under {directory} and no "
            f"queries supplied for a from-scratch replay"
        )

    if router is not None:
        engine._resume_checkpoints = {
            int(index): fold_state
            for index, fold_state in (router.get("folds") or {}).items()
        }
        # Routing-table versioning (elastic membership): restore prior
        # partition ownership wherever those members are still live —
        # their journals describe that placement — and keep counting
        # routing versions from where the crashed run left off.
        routing = router.get("routing")
        if isinstance(routing, dict):
            engine._resume_routing = routing
    engine._start()

    # Restore the router's own bookkeeping and the local lane.
    counters = [0] * shards
    lane_starts: Sequence[int] | None = None
    commit_start = 0
    if router is not None:
        delivered = list(router["shard_delivered"])
        if len(delivered) != shards:
            raise CheckpointError(
                f"checkpoint records {len(delivered)} shard watermarks "
                f"but the engine has {shards} shards"
            )
        counters = delivered
        lane_starts = router["lane_seqs"]
        commit_start = int(router.get("commit_seq", 0))
        engine.metrics.events = int(router["events"])
        engine._clock_ms = router["clock_ms"]
        engine._route_seq = int(router["route_seq"])
        engine.shed_events = int(router.get("shed_events", 0))
        _apply_seed(engine._local, state)
        metrics = state.get("metrics", {})
        local = engine._local.metrics
        local.events = metrics.get("events", 0)
        local.outputs = metrics.get("outputs", 0)
        local.elapsed_s = metrics.get("elapsed_s", 0.0)
        local.peak_objects = metrics.get("peak_objects", 0)
        local.sink_errors = metrics.get("sink_errors", 0)

    lane_count = lanes
    if lane_count is None:
        lane_count = router["lanes"] if router else discover_lanes(directory)
    log = RouterLog(
        directory,
        lanes=max(1, lane_count),
        shard_attribute=engine.shard_attribute,
        fsync=fsync,
        registry=registry,
    )

    # Captured *before* replay: replay appends past-tail records to
    # the shard journals, which must not widen the skip window.
    recovered = [
        worker.log.next_seq if worker.log is not None else 0
        for worker in engine._workers
    ]

    # Local-lane sinks stay detached during replay — pre-crash outputs
    # were already delivered (same contract as single-process recover).
    detached: dict[str, list] = {}
    for name in engine._local.query_names:
        registration = engine._local._registrations[name]
        detached[name] = registration.sinks
        registration.sinks = []
    replayed = 0
    try:
        for _, event in log.replay(lane_starts, commit_start):
            engine._recovery_route(event, counters, recovered)
            replayed += 1
    finally:
        for name, saved in detached.items():
            engine._local._registrations[name].sinks = saved

    engine.events_replayed = replayed
    m_replayed.inc(replayed)
    m_recoveries.inc()
    _log.info(
        "router_recovered",
        message=(
            f"router recovered from "
            f"{state_path.name if state_path else 'no checkpoint'}: "
            f"{replayed} lane events replayed across {log.lanes} "
            f"lane(s), {shards} shard(s) re-seeded"
        ),
        replayed=replayed,
        shards=shards,
    )

    if reattach_log:
        # attach_router_log() refuses an engine that already ingested
        # events — that guard exists precisely for the non-recovery
        # path, so reattach directly here, post-replay.
        engine._router_log = log
        engine._events_since_router_checkpoint = 0
    else:
        log.close()
    return engine
