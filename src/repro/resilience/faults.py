"""Deterministic, seeded fault injection for the resilience suite.

Everything here is reproducible from one integer seed (the
``REPRO_FAULT_SEED`` environment variable in CI, see the ``chaos``
job): crash points, torn journal tails, corrupted checkpoint bytes,
executor failures and sink failure bursts are all drawn from one
:class:`random.Random`. A failing chaos run is re-run locally with the
same seed and replays byte-for-byte.

The injectable faults mirror the failure modes the runtime claims to
survive:

* :class:`FaultyExecutor` — wraps any executor and raises
  :class:`InjectedFault` at chosen event ordinals (or on every event —
  a poison registration exercising quarantine);
* :class:`BurstySink` — a sink failing in seeded bursts (exercises the
  sink isolation PR 1 added, now measurable under load);
* :func:`tear_journal_tail` — truncates the last journal segment
  mid-record, the on-disk shape of a crash during an append;
* :func:`corrupt_checkpoint` / :func:`corrupt_latest_checkpoint` —
  overwrites bytes inside a checkpoint generation, exercising the
  fall-back-to-older-generation path;
* :func:`kill_shard` / :class:`ShardKill` — SIGKILL a sharded worker
  process outright, immediately or after *k* more ingested events
  (exercises supervised restart + exact re-seed);
* :func:`stall_shard` — make a worker stop answering heartbeats for a
  while (``hard=True`` also ignores SIGTERM, exercising the router's
  terminate→kill escalation);
* :func:`hang_shard_pipe` — make a worker sleep on its *data* lane so
  the pipe backs up (exercises the backpressure policies while
  heartbeats stay green);
* :class:`FaultPlan` — the seeded facade the tests draw all of the
  above from.
"""

from __future__ import annotations

import os
import random
import signal
from pathlib import Path

from repro.engine.sinks import Output, ResultSink
from repro.events.event import Event
from repro.resilience.checkpointer import list_checkpoints
from repro.resilience.journal import list_segments

ENV_SEED = "REPRO_FAULT_SEED"


def fault_seed(default: int = 0) -> int:
    """The chaos seed: ``REPRO_FAULT_SEED`` env var, else ``default``."""
    raw = os.environ.get(ENV_SEED)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"{ENV_SEED} must be an integer, got {raw!r}"
        ) from None


class InjectedFault(RuntimeError):
    """The exception every injected failure raises (never caught by
    accident: it does not derive from ReproError)."""


class FaultyExecutor:
    """Wrap an executor; raise :class:`InjectedFault` on chosen events.

    ``fail_at`` is a collection of 0-based ordinals of *offered* events
    to fail on; ``poison=True`` fails on every event. The underlying
    executor does not see the failed event at all (failure happens
    before delegation), matching a crash inside ``process``.
    """

    def __init__(
        self,
        executor,
        fail_at=(),
        poison: bool = False,
    ):
        self._executor = executor
        self._fail_at = frozenset(fail_at)
        self._poison = poison
        self.offered = 0
        self.failures = 0

    def process(self, event: Event):
        ordinal = self.offered
        self.offered += 1
        if self._poison or ordinal in self._fail_at:
            self.failures += 1
            raise InjectedFault(
                f"injected executor failure at event #{ordinal}"
            )
        return self._executor.process(event)

    def result(self):
        return self._executor.result()

    def current_objects(self) -> int:
        probe = getattr(self._executor, "current_objects", None)
        return probe() if probe is not None else 0

    @property
    def query(self):
        return self._executor.query

    @property
    def runtime(self):
        return self._executor.runtime


class BurstySink(ResultSink):
    """A sink that fails for ``burst_len`` consecutive emits, every
    ``period`` emits (deterministic given the constructor arguments)."""

    def __init__(self, period: int = 10, burst_len: int = 3):
        if period < 1 or burst_len < 0:
            raise ValueError("period must be >= 1 and burst_len >= 0")
        self._period = period
        self._burst_len = burst_len
        self._emits = 0
        self.delivered: list[Output] = []
        self.failures = 0

    def emit(self, output: Output) -> None:
        ordinal = self._emits
        self._emits += 1
        if ordinal % self._period < self._burst_len:
            self.failures += 1
            raise InjectedFault(
                f"injected sink failure at emit #{ordinal}"
            )
        self.delivered.append(output)


def tear_journal_tail(
    directory: str | Path, drop_bytes: int | None = None,
    rng: random.Random | None = None,
) -> int:
    """Truncate the last journal segment mid-record (a torn write).

    Removes ``drop_bytes`` from the end (default: a seeded amount that
    is guaranteed to land inside the final record, so the tear is
    always "partial last line", never "clean end"). Returns the number
    of bytes dropped (0 when there is nothing to tear).
    """
    segments = list_segments(directory)
    if not segments:
        return 0
    last = segments[-1]
    data = last.read_bytes()
    if not data:
        return 0
    # Size of the final record: from after the previous newline to EOF.
    body = data[:-1] if data.endswith(b"\n") else data
    previous_newline = body.rfind(b"\n")
    final_record_len = len(data) - (previous_newline + 1)
    if final_record_len <= 1:
        return 0
    if drop_bytes is None:
        rng = rng if rng is not None else random.Random(0)
        drop_bytes = rng.randint(1, final_record_len - 1)
    drop_bytes = max(1, min(drop_bytes, final_record_len - 1))
    with open(last, "r+b") as handle:
        handle.truncate(len(data) - drop_bytes)
    return drop_bytes


def corrupt_checkpoint(
    path: str | Path, rng: random.Random | None = None
) -> None:
    """Overwrite a few bytes in the middle of one checkpoint file."""
    rng = rng if rng is not None else random.Random(0)
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        path.write_bytes(b"\x00")
        return
    for _ in range(min(8, len(data))):
        data[rng.randrange(len(data))] = rng.randrange(256)
    path.write_bytes(bytes(data))


def corrupt_latest_checkpoint(
    directory: str | Path, rng: random.Random | None = None
) -> Path | None:
    """Corrupt the newest checkpoint generation; returns its path."""
    checkpoints = list_checkpoints(directory)
    if not checkpoints:
        return None
    corrupt_checkpoint(checkpoints[-1], rng=rng)
    return checkpoints[-1]


class ShardKill:
    """An armed process kill against one shard of a sharded engine.

    ``tick()`` once per ingested event; the kill fires (once) when the
    countdown reaches zero. ``fire()`` triggers it immediately. The
    signal goes to whatever process currently serves the shard, so a
    ``tick``-driven kill can also hit a restarted generation.
    """

    def __init__(self, engine, shard: int, after_events: int = 0,
                 sig: int = signal.SIGKILL):
        self._engine = engine
        self.shard = shard
        self._remaining = after_events
        self._sig = sig
        self.fired = False

    def tick(self, count: int = 1) -> bool:
        """Count ingested events; returns True when this call fired."""
        if self.fired:
            return False
        self._remaining -= count
        if self._remaining > 0:
            return False
        return self.fire()

    def fire(self) -> bool:
        """Kill the shard's current worker process now (once)."""
        if self.fired:
            return False
        self.fired = True
        process = self._engine._workers[self.shard].process
        if process is None or process.pid is None:
            return False
        try:
            os.kill(process.pid, self._sig)
        except ProcessLookupError:
            return False
        return True


def kill_shard(engine, shard: int, after_events: int = 0,
               sig: int = signal.SIGKILL) -> ShardKill:
    """Arm a kill of one shard worker; fires immediately when
    ``after_events`` is 0, else after ``after_events`` ``tick()``s."""
    kill = ShardKill(engine, shard, after_events=after_events, sig=sig)
    if after_events <= 0:
        kill.fire()
    return kill


def stall_shard(engine, shard: int, seconds: float,
                hard: bool = False) -> None:
    """Make one worker unresponsive to heartbeats for ``seconds``.

    Sends a stall command down the *control* pipe, so the worker stops
    answering pings without its data pipe breaking — the shape of a
    worker wedged in a long computation. ``hard=True`` additionally
    makes the worker ignore SIGTERM, so only the router's ``kill()``
    escalation can remove it.
    """
    worker = engine._workers[shard]
    command = "stall_hard" if hard else "stall"
    with worker.lock:
        worker.control.send((command, float(seconds)))


def hang_shard_pipe(engine, shard: int, seconds: float) -> None:
    """Make one worker sleep on its *data* lane for ``seconds`` so the
    pipe buffer fills — heartbeats keep flowing, sends back up."""
    worker = engine._workers[shard]
    with worker.lock:
        worker.conn.send(("hang", float(seconds)))


class FaultPlan:
    """One seeded source for every random choice a chaos test makes."""

    def __init__(self, seed: int | None = None):
        self.seed = seed if seed is not None else fault_seed()
        self.rng = random.Random(self.seed)

    def crash_point(self, n_events: int) -> int:
        """An event index to 'crash' at (at least 1, at most n-1)."""
        if n_events < 2:
            return 1
        return self.rng.randint(1, n_events - 1)

    def shard_to_kill(self, shards: int) -> int:
        """A seeded victim shard for a process-level kill."""
        return self.rng.randrange(shards)

    def failure_ordinals(self, n_events: int, count: int) -> frozenset[int]:
        """``count`` distinct event ordinals for injected failures."""
        count = min(count, n_events)
        return frozenset(self.rng.sample(range(n_events), count))

    def faulty(self, executor, n_events: int, count: int) -> FaultyExecutor:
        return FaultyExecutor(
            executor, fail_at=self.failure_ordinals(n_events, count)
        )

    def poison(self, executor) -> FaultyExecutor:
        return FaultyExecutor(executor, poison=True)

    def bursty_sink(self) -> BurstySink:
        return BurstySink(
            period=self.rng.randint(5, 20),
            burst_len=self.rng.randint(1, 4),
        )

    def tear_journal(self, directory: str | Path) -> int:
        return tear_journal_tail(directory, rng=self.rng)

    def corrupt_latest_checkpoint(
        self, directory: str | Path
    ) -> Path | None:
        return corrupt_latest_checkpoint(directory, rng=self.rng)
